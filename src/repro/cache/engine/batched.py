"""Batched candidate evaluation: K index functions, one trace replay.

The search and experiment layers repeatedly exact-verify many candidate
hash functions on the same trace.  Doing that one candidate at a time
recomputes the same masked parities and re-walks the trace K times in
Python-call-heavy code.  This module stacks the column masks of all K
candidates and computes every index stream in one NumPy pass, then
scores all streams with per-row stable argsorts — the whole candidate
front costs one batched replay.

Index streams are laid out one *row* per candidate (``(K, N)``,
C-contiguous) so every sort, gather and reduction walks memory
sequentially.  Work is chunked so peak memory stays near
:data:`CHUNK_ELEMENTS` array elements regardless of trace length or
candidate count.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.backend import active_backend
from repro.cache.engine.core import lru_miss_vector_shared, program_order_links
from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.gf2.bitvec import parity_table, parity_u64
from repro.gf2.hashfn import XorHashFunction

__all__ = [
    "stacked_index_streams",
    "misses_for_index_streams",
    "evaluate_many",
]

#: Soft cap on intermediate array size (elements) for chunked passes.
CHUNK_ELEMENTS = 1 << 22


def stacked_index_streams(
    functions: Sequence[XorHashFunction], blocks: np.ndarray
) -> np.ndarray:
    """Index streams of K hash functions as one ``(K, N)`` uint32 array.

    All functions must share the hashed window ``n`` and width ``m``.
    Row ``k`` equals ``functions[k].apply_array(blocks)``; the batch
    computes one parity pass per index bit across all K candidates
    instead of K separate evaluations.
    """
    if not functions:
        return np.zeros((0, len(blocks)), dtype=np.uint32)
    n = functions[0].n
    m = functions[0].m
    for k, fn in enumerate(functions):
        if fn.n != n or fn.m != m:
            raise ValueError(
                f"candidate {k} is sized (n={fn.n}, m={fn.m}); "
                f"the batch requires (n={n}, m={m})"
            )
    blocks = np.asarray(blocks, dtype=np.uint64)
    count = len(blocks)
    num_functions = len(functions)
    out = np.zeros((num_functions, count), dtype=np.uint32)
    if count == 0:
        return out
    cols_per_chunk = max(1, CHUNK_ELEMENTS // max(num_functions, 1))
    if n <= 16:
        table = parity_table()
        small = (blocks & np.uint64((1 << n) - 1)).astype(np.uint16)
        col_masks = np.array(
            [[fn.columns[c] for fn in functions] for c in range(m)], dtype=np.uint16
        )
        for lo in range(0, count, cols_per_chunk):
            chunk = small[None, lo : lo + cols_per_chunk]
            view = out[:, lo : lo + cols_per_chunk]
            for c in range(m):
                bits = table[chunk & col_masks[c][:, None]]
                view |= bits.astype(np.uint32) << np.uint32(c)
    else:
        masked = blocks & np.uint64((1 << n) - 1)
        for k, fn in enumerate(functions):
            row = out[k]
            for c, col in enumerate(fn.columns):
                bits = parity_u64(masked, col).astype(np.uint32)
                row |= bits << np.uint32(c)
    return out


def misses_for_index_streams(
    index_streams: np.ndarray, keys: np.ndarray
) -> np.ndarray:
    """Direct-mapped miss counts for each row of ``index_streams``.

    ``index_streams`` has shape ``(K, N)``: one set-identity stream per
    candidate.  ``keys`` must identify *blocks* (block addresses or any
    bijective relabeling of them) — equal keys then imply equal set ids
    in every stream, so after the stable per-row sort an access hits iff
    its key equals the preceding key, and the set comparison is
    redundant.  The argsort and the consecutive-change count run on a
    whole chunk of candidates at once (``axis=1`` reductions over
    contiguous rows), so the per-candidate cost is one radix sort with
    no Python-level per-access work.
    """
    index_streams = np.asarray(index_streams)
    if index_streams.ndim != 2:
        raise ValueError(
            f"index_streams must be 2-D (K, N), got shape {index_streams.shape}"
        )
    num_candidates, count = index_streams.shape
    misses = np.zeros(num_candidates, dtype=np.int64)
    if count == 0 or num_candidates == 0:
        return misses
    keys = np.asarray(keys)
    # NumPy's stable sort is radix only for <= 16-bit integers; wider
    # rows fall back to a comparison sort (~9x slower).  Index streams
    # carry m-bit set ids, so they almost always narrow.
    if (
        index_streams.dtype.kind in "ui"
        and index_streams.dtype.itemsize > 2
        and int(index_streams.max()) < 1 << 16
        and (index_streams.dtype.kind == "u" or int(index_streams.min()) >= 0)
    ):
        index_streams = index_streams.astype(np.uint16)
    rows_per_chunk = max(1, CHUNK_ELEMENTS // count)
    for lo in range(0, num_candidates, rows_per_chunk):
        ids = index_streams[lo : lo + rows_per_chunk]
        order = np.argsort(ids, axis=1, kind="stable")
        sorted_keys = keys[order]
        change = sorted_keys[:, 1:] != sorted_keys[:, :-1]
        misses[lo : lo + rows_per_chunk] = 1 + np.count_nonzero(change, axis=1)
    return misses


def evaluate_many(
    trace,
    geometry: CacheGeometry,
    functions: Sequence[XorHashFunction],
) -> list[CacheStats]:
    """Exact stats for K candidate hash functions in one trace replay.

    ``trace`` may be a :class:`~repro.trace.trace.Trace` or a raw
    block-address array.  Equivalent to calling the per-function
    simulators K times (property-tested), but the index streams are
    computed in one stacked pass and — for direct-mapped geometries —
    scored by the batched sort kernel.
    """
    if hasattr(trace, "block_addresses"):
        blocks = trace.block_addresses(geometry.block_size)
    else:
        blocks = np.asarray(trace, dtype=np.uint64)
    for k, fn in enumerate(functions):
        if fn.m != geometry.index_bits:
            raise ValueError(
                f"candidate {k} produces {fn.m} index bits, geometry needs "
                f"{geometry.index_bits}"
            )
        if not fn.is_full_rank:
            # Same contract as XorIndexing on the sequential path: a
            # rank-deficient function breaks the paper's bijectivity
            # requirement and must not be silently scored.
            raise ValueError(
                f"candidate {k} requires a full-rank hash function "
                f"(rank {fn.rank} < m={fn.m})"
            )
    functions = list(functions)
    if not functions:
        return []
    if len(blocks) == 0:
        return [CacheStats(accesses=0, misses=0) for _ in functions]
    # Hash the *working set*, not the trace: index streams are computed
    # once per distinct block and expanded through the inverse mapping,
    # and the dense uint32 relabeling doubles as the block-identity key
    # (halving gather bandwidth in the scoring sort).
    unique_blocks, inverse = np.unique(blocks, return_inverse=True)
    inverse = inverse.astype(np.uint32)
    unique_streams = stacked_index_streams(functions, unique_blocks)
    compulsory = len(unique_blocks)
    count = len(blocks)
    num_functions = len(functions)
    if geometry.is_direct_mapped:
        miss_counts = np.zeros(num_functions, dtype=np.int64)
        rows_per_chunk = max(1, CHUNK_ELEMENTS // count)
        for lo in range(0, num_functions, rows_per_chunk):
            expanded = unique_streams[lo : lo + rows_per_chunk][:, inverse]
            miss_counts[lo : lo + rows_per_chunk] = misses_for_index_streams(
                expanded, inverse
            )
    else:
        # Shared per-trace precomputation: equal keys imply equal set
        # ids under every candidate, so the same-key occurrence links
        # are candidate-independent — one key sort serves the whole
        # front, and each candidate pays only its set-grouping sort
        # plus the backend depth kernel.
        prev_program, next_program = program_order_links(inverse)
        backend = active_backend()
        miss_counts = [
            int(
                np.count_nonzero(
                    lru_miss_vector_shared(
                        unique_streams[k][inverse],
                        inverse,
                        prev_program,
                        next_program,
                        geometry.associativity,
                        backend,
                    )
                )
            )
            for k in range(num_functions)
        ]
    return [
        CacheStats(accesses=count, misses=int(misses), compulsory=compulsory)
        for misses in miss_counts
    ]
