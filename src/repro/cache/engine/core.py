"""Array kernels shared by every cache organization.

The kernels operate on two parallel streams derived from a block trace:

* ``set_ids`` — per-access set identity.  Any integer array works; the
  values need not be compact (a bit-selection mask applied to the block
  address is a valid set identity, as is a hashed index).
* ``keys``    — per-access block identity *within* a set.  Because every
  indexing policy in the package keeps (set index, tag) jointly
  bijective, the full block address is always a valid key, which lets
  callers skip computing tags entirely.

All kernels return a per-access boolean miss vector in program order,
so the simulators, the three-Cs classifier and the property tests share
one contract.  The replacement behaviour is bit-identical to the scalar
reference simulators kept in :mod:`repro.cache.direct_mapped`,
:mod:`repro.cache.set_assoc`, :mod:`repro.cache.fully_assoc` and
:mod:`repro.cache.skewed`.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

__all__ = [
    "direct_mapped_miss_vector",
    "lru_miss_vector",
    "skewed_miss_vector",
    "compulsory_count",
    "group_by_set",
]


def direct_mapped_miss_vector(set_ids: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Miss vector for one frame per set, fully vectorized.

    Stable-sorting by set identity preserves program order inside each
    set's subsequence, and a direct-mapped set holds exactly the most
    recent block: an access misses iff it is the first to its set or its
    key differs from the immediately preceding access to that set.
    """
    count = len(set_ids)
    if count == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(set_ids, kind="stable")
    sorted_ids = set_ids[order]
    sorted_keys = keys[order]
    miss_sorted = np.empty(count, dtype=bool)
    miss_sorted[0] = True
    miss_sorted[1:] = (sorted_ids[1:] != sorted_ids[:-1]) | (
        sorted_keys[1:] != sorted_keys[:-1]
    )
    misses = np.empty(count, dtype=bool)
    misses[order] = miss_sorted
    return misses


def group_by_set(set_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group accesses by set: (stable order, group starts, group ends).

    ``order`` permutes accesses so each set's references are contiguous
    and in program order; ``starts[g]:ends[g]`` delimits group ``g`` in
    that permutation.
    """
    order = np.argsort(set_ids, kind="stable")
    sorted_ids = set_ids[order]
    boundaries = np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
    starts = np.concatenate([np.zeros(1, dtype=np.intp), boundaries])
    ends = np.append(boundaries, len(set_ids))
    return order, starts, ends


def lru_miss_vector(set_ids: np.ndarray, keys: np.ndarray, ways: int) -> np.ndarray:
    """Miss vector for an LRU set-associative cache.

    Sets are independent, so accesses are grouped per set (one
    vectorized stable sort) and the LRU scan runs over each set's tiny
    subsequence instead of the whole trace.  The per-group scan works on
    a plain Python list (one bulk conversion) rather than indexing the
    numpy array element by element.
    """
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    if ways == 1:
        return direct_mapped_miss_vector(set_ids, keys)
    count = len(set_ids)
    if count == 0:
        return np.zeros(0, dtype=bool)
    order, starts, ends = group_by_set(set_ids)
    key_list = keys[order].tolist()
    flags: list[bool] = []
    for start, end in zip(starts.tolist(), ends.tolist()):
        lru: OrderedDict = OrderedDict()
        move_to_end = lru.move_to_end
        pop_oldest = lru.popitem
        for i in range(start, end):
            key = key_list[i]
            if key in lru:
                move_to_end(key)
                flags.append(False)
            else:
                if len(lru) >= ways:
                    pop_oldest(last=False)
                lru[key] = None
                flags.append(True)
    misses = np.empty(count, dtype=bool)
    misses[order] = np.array(flags, dtype=bool)
    return misses


def skewed_miss_vector(
    bank_set_ids: Sequence[np.ndarray], keys: np.ndarray, seed: int = 0
) -> np.ndarray:
    """Miss vector for a skewed cache (one frame per set per bank).

    Banks share state through the victim choice, so the scan is
    inherently sequential; the engine keeps it fast by precomputing
    every bank's index stream (vectorized upstream), drawing all victim
    choices in one RNG call, and bulk-converting the streams to Python
    lists so the inner loop does no numpy scalar access.  Victim
    consumption matches the reference simulator, so results are
    bit-identical under the same seed.
    """
    num_banks = len(bank_set_ids)
    if num_banks < 2:
        raise ValueError("a skewed cache needs at least two banks")
    count = len(keys)
    if count == 0:
        return np.zeros(0, dtype=bool)
    rng = np.random.default_rng(seed)
    victims = rng.integers(0, num_banks, size=count).tolist()
    id_lists = [np.asarray(ids).tolist() for ids in bank_set_ids]
    key_list = keys.tolist()
    banks: list[dict] = [{} for _ in range(num_banks)]
    flags: list[bool] = []
    for i in range(count):
        key = key_list[i]
        for b in range(num_banks):
            if banks[b].get(id_lists[b][i]) == key:
                flags.append(False)
                break
        else:
            flags.append(True)
            victim = victims[i]
            banks[victim][id_lists[victim][i]] = key
    return np.array(flags, dtype=bool)


def compulsory_count(keys: np.ndarray) -> int:
    """Number of first-touch misses.

    Every organization in the package identifies blocks exactly (tags
    are bijective given the set index), so the first access to a block
    always misses and the compulsory count is the distinct-block count.
    """
    return int(np.unique(keys).size) if len(keys) else 0
