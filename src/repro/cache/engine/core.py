"""Array kernels shared by every cache organization.

The kernels operate on two parallel streams derived from a block trace:

* ``set_ids`` — per-access set identity.  Any integer array works; the
  values need not be compact (a bit-selection mask applied to the block
  address is a valid set identity, as is a hashed index).
* ``keys``    — per-access block identity *within* a set.  Because every
  indexing policy in the package keeps (set index, tag) jointly
  bijective, the full block address is always a valid key, which lets
  callers skip computing tags entirely.

All kernels return a per-access boolean miss vector in program order,
so the simulators, the three-Cs classifier and the property tests share
one contract.  The replacement behaviour is bit-identical to the scalar
reference simulators kept in :mod:`repro.cache.direct_mapped`,
:mod:`repro.cache.set_assoc`, :mod:`repro.cache.fully_assoc` and
:mod:`repro.cache.skewed`.

The sequential-replacement inner kernels (the LRU stack-depth test and
the skewed replay) dispatch through :mod:`repro.backend` — the common
work (set grouping, occurrence links, victim draws) happens here once,
in NumPy, regardless of the backend.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.backend import Backend, active_backend
from repro.backend.sorting import stable_argsort

__all__ = [
    "direct_mapped_miss_vector",
    "lru_miss_vector",
    "lru_miss_vector_shared",
    "program_order_links",
    "skewed_miss_vector",
    "compulsory_count",
    "group_by_set",
    "occurrence_links",
]


def direct_mapped_miss_vector(set_ids: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Miss vector for one frame per set, fully vectorized.

    Stable-sorting by set identity preserves program order inside each
    set's subsequence, and a direct-mapped set holds exactly the most
    recent block: an access misses iff it is the first to its set or its
    key differs from the immediately preceding access to that set.
    """
    count = len(set_ids)
    if count == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(set_ids, kind="stable")
    sorted_ids = set_ids[order]
    sorted_keys = keys[order]
    miss_sorted = np.empty(count, dtype=bool)
    miss_sorted[0] = True
    miss_sorted[1:] = (sorted_ids[1:] != sorted_ids[:-1]) | (
        sorted_keys[1:] != sorted_keys[:-1]
    )
    misses = np.empty(count, dtype=bool)
    misses[order] = miss_sorted
    return misses


def group_by_set(set_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group accesses by set: (stable order, group starts, group ends).

    ``order`` permutes accesses so each set's references are contiguous
    and in program order; ``starts[g]:ends[g]`` delimits group ``g`` in
    that permutation.
    """
    order = stable_argsort(set_ids)
    sorted_ids = set_ids[order]
    boundaries = np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
    starts = np.concatenate([np.zeros(1, dtype=np.intp), boundaries])
    ends = np.append(boundaries, len(set_ids))
    return order, starts, ends


def occurrence_links(
    grouped_set_ids: np.ndarray, grouped_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Previous/next same-(set, key) occurrence links, grouped coords.

    Both inputs must already be in grouped coordinates (sets
    contiguous, program order inside each set — the permutation from
    :func:`group_by_set`).  ``prev[t] < 0`` marks a set-local first
    touch.  A slot whose key never recurs gets ``nxt[t]`` = the *end of
    its set's span* rather than a global sentinel: past its set's last
    access the slot can never participate in a reuse interval again, so
    this tighter horizon lets chunked kernels expire whole sets from
    their carried state (a global sentinel would keep one slot per
    distinct (set, key) pair alive forever).

    One stable argsort of the keys clusters equal keys; inside each
    cluster, grouped positions ascend, which keeps equal (key, set)
    pairs contiguous and in program order — so consecutive sort
    positions with equal key *and* equal set are exactly the
    (previous, current) occurrence pairs.  The set comparison matters:
    the same key may legally appear under several set identities (the
    key only needs to be unique within a set).
    """
    count = len(grouped_keys)
    # 32-bit links halve the traffic of every downstream pass; the
    # sentinel needs count + 1 to stay representable.
    dtype = np.int32 if count < (1 << 31) - 2 else np.int64
    prev = np.full(count, -1, dtype=dtype)
    if count == 0:
        return prev, np.full(count, count, dtype=dtype)
    single_set = bool(grouped_set_ids[0] == grouped_set_ids[-1])
    if single_set:
        nxt = np.full(count, count, dtype=dtype)
    else:
        boundaries = (
            np.flatnonzero(grouped_set_ids[1:] != grouped_set_ids[:-1]) + 1
        )
        span_ends = np.append(boundaries, count).astype(dtype, copy=False)
        widths = np.diff(np.concatenate([np.zeros(1, dtype=dtype), span_ends]))
        nxt = np.repeat(span_ends, widths)
    keys_cmp = _narrow(grouped_keys)
    korder = stable_argsort(keys_cmp)
    keys_in_order = keys_cmp[korder]
    repeat = np.empty(count, dtype=bool)
    repeat[0] = False
    np.equal(keys_in_order[1:], keys_in_order[:-1], out=repeat[1:])
    if not single_set:
        sets_in_order = _narrow(grouped_set_ids)[korder]
        repeat[1:] &= sets_in_order[1:] == sets_in_order[:-1]
    # Scatter the full consecutive-sort-position pairing, then repair
    # the few group boundaries: repeats vastly outnumber first/last
    # occurrences, so two dense scatters beat materializing the repeat
    # index set.  ``firsts`` always starts with sort position 0.
    firsts = np.flatnonzero(~repeat)
    lasts_idx = korder[np.append(firsts[1:], count) - 1]
    span_sentinels = nxt[lasts_idx]
    nxt[korder[:-1]] = korder[1:]
    nxt[lasts_idx] = span_sentinels
    prev[korder[1:]] = korder[:-1]
    prev[korder[firsts]] = -1
    return prev, nxt


def _narrow(values: np.ndarray) -> np.ndarray:
    """Narrow a non-negative integer array to the smallest sort dtype.

    Any injective relabeling preserves the equal-runs-and-program-order
    structure :func:`occurrence_links` needs from the key sort, and a
    16-bit dtype both halves gather traffic and lets NumPy's native
    radix argsort take over.  Arrays that do not fit come back as-is.
    """
    if values.dtype.kind not in "ui" or values.dtype.itemsize <= 2 or not len(values):
        return values
    top = int(values.max())
    if values.dtype.kind == "i" and int(values.min()) < 0:
        return values
    if top < 1 << 16:
        return values.astype(np.uint16)
    if top < 1 << 32 and values.dtype.itemsize > 4:
        return values.astype(np.uint32)
    return values


def lru_miss_vector(
    set_ids: np.ndarray | None,
    keys: np.ndarray,
    ways: int,
    backend: Backend | None = None,
) -> np.ndarray:
    """Miss vector for an LRU set-associative cache.

    LRU is a stack algorithm, so an access hits iff it is a reaccess
    whose LRU stack depth within its set — the number of distinct other
    keys touched in the set since its previous occurrence — is below
    the associativity.  The depth test runs on the active compute
    backend over occurrence links built here in grouped coordinates;
    everything else (grouping, links, scatter back to program order) is
    one-pass NumPy regardless of backend.

    ``set_ids=None`` declares a single-set (fully-associative) cache:
    program order already is grouped order, so the grouping sort and
    the permutation gathers/scatter drop out entirely.
    """
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    count = len(keys)
    if set_ids is None:
        if ways == 1:
            return lru_miss_vector(np.zeros(count, dtype=np.uint8), keys, 1)
        if count == 0:
            return np.zeros(0, dtype=bool)
        sole = np.zeros(1, dtype=np.uint8)
        prev, nxt = occurrence_links(np.broadcast_to(sole, (count,)), keys)
        if backend is None:
            backend = active_backend()
        return (prev < 0) | backend.lru_depth_at_least(prev, nxt, ways)
    if ways == 1:
        return direct_mapped_miss_vector(set_ids, keys)
    if count == 0:
        return np.zeros(0, dtype=bool)
    order = stable_argsort(set_ids)
    prev, nxt = occurrence_links(set_ids[order], keys[order])
    if backend is None:
        backend = active_backend()
    deep = backend.lru_depth_at_least(prev, nxt, ways)
    misses = np.empty(count, dtype=bool)
    misses[order] = (prev < 0) | deep
    return misses


def program_order_links(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Same-key occurrence links in program order.

    ``prev[t]`` is the previous access with the same key (``-1`` on
    first touch); ``nxt[t]`` the next (``count`` when the key never
    recurs).  One stable key sort — reusable by
    :func:`lru_miss_vector_shared` across every candidate index
    function of a batch, because the links never look at set ids.
    """
    count = len(keys)
    sole = np.zeros(1, dtype=np.uint8)
    return occurrence_links(np.broadcast_to(sole, (count,)), keys)


def lru_miss_vector_shared(
    set_ids: np.ndarray,
    keys: np.ndarray,
    prev_program: np.ndarray,
    next_program: np.ndarray,
    ways: int,
    backend: Backend | None = None,
) -> np.ndarray:
    """:func:`lru_miss_vector` reusing precomputed program-order links.

    ``prev_program``/``next_program`` come from
    :func:`program_order_links` over the same ``keys``.  Valid whenever
    equal keys imply equal set ids — true for every indexing function
    over one block stream, since the set index is a function of the
    block address.  All occurrences of a key then share a set and sit
    in program order within its group, so the grouped-coordinate links
    are just the program-order links pushed through the grouping
    permutation — two gathers instead of the per-candidate key sort
    :func:`occurrence_links` would pay.  Batched evaluation over K
    candidates pays one key sort total instead of K.
    """
    if ways < 1:
        raise ValueError(f"ways must be >= 1, got {ways}")
    if ways == 1:
        return direct_mapped_miss_vector(set_ids, keys)
    count = len(set_ids)
    if count == 0:
        return np.zeros(0, dtype=bool)
    order = stable_argsort(set_ids)
    dtype = prev_program.dtype
    # One extra slot absorbs both sentinels during the gathers: index
    # ``-1`` (first touch) wraps to it and index ``count`` (key never
    # recurs) lands on it, so no clipping pass is needed before the
    # fancy indexing — the sentinel positions are repaired afterwards.
    inv = np.empty(count + 1, dtype=dtype)
    inv[order] = np.arange(count, dtype=dtype)
    sorted_ids = set_ids[order]
    boundaries = np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
    span_ends = np.append(boundaries, count).astype(dtype, copy=False)
    widths = np.diff(np.concatenate([np.zeros(1, dtype=dtype), span_ends]))
    span_of = np.repeat(span_ends, widths)
    pp = prev_program[order]
    prev = inv[pp]
    first = pp < 0
    prev[first] = -1
    pn = next_program[order]
    nxt = np.where(pn >= count, span_of, inv[pn])
    if backend is None:
        backend = active_backend()
    deep = backend.lru_depth_at_least(prev, nxt, ways)
    misses = np.empty(count, dtype=bool)
    misses[order] = first | deep
    return misses


def skewed_miss_vector(
    bank_set_ids: Sequence[np.ndarray],
    keys: np.ndarray,
    seed: int = 0,
    num_sets: int | None = None,
    backend: Backend | None = None,
) -> np.ndarray:
    """Miss vector for a skewed cache (one frame per set per bank).

    Banks share state through the victim choice, so the replay is
    inherently sequential; victim choices are positional (one RNG draw
    per access up front, consumed by index), which both matches the
    reference simulator bit for bit and lets the NumPy backend replay
    speculatively.  ``num_sets`` bounds the per-bank set identities;
    when omitted it is inferred from the streams.
    """
    num_banks = len(bank_set_ids)
    if num_banks < 2:
        raise ValueError("a skewed cache needs at least two banks")
    count = len(keys)
    if count == 0:
        return np.zeros(0, dtype=bool)
    rng = np.random.default_rng(seed)
    victims = rng.integers(0, num_banks, size=count)
    # Keep the streams' native (usually narrow) dtype — the backends
    # narrow or widen as their kernels need.
    ids = np.stack([np.asarray(stream) for stream in bank_set_ids])
    if num_sets is None:
        num_sets = int(ids.max()) + 1
    keys = np.ascontiguousarray(np.asarray(keys, dtype=np.uint64))
    if backend is None:
        backend = active_backend()
    return backend.skewed_misses(ids, keys, victims, num_sets)


#: Largest key value the distinct count handles with a dense scatter
#: (a 16 MB boolean table) instead of a full sort.
_DENSE_KEY_LIMIT = 1 << 24


def compulsory_count(keys: np.ndarray) -> int:
    """Number of first-touch misses.

    Every organization in the package identifies blocks exactly (tags
    are bijective given the set index), so the first access to a block
    always misses and the compulsory count is the distinct-block count.
    Small key universes count through one boolean scatter; anything
    wider falls back to ``np.unique``'s sort.
    """
    if not len(keys):
        return 0
    keys = np.asarray(keys)
    if keys.dtype.kind in "ui":
        low = int(keys.min()) if keys.dtype.kind == "i" else 0
        if low >= 0 and int(keys.max()) < _DENSE_KEY_LIMIT:
            seen = np.zeros(int(keys.max()) + 1, dtype=bool)
            seen[keys] = True
            return int(np.count_nonzero(seen))
    return int(np.unique(keys).size)
