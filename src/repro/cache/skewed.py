"""Skewed-associative cache (Seznec & Bodin, paper ref. [2]).

Included as the related-work baseline the paper discusses: a 2-way
cache where each bank uses a *different* hash function, so two blocks
conflicting in one bank rarely conflict in the other.  Replacement
follows Seznec's simple pseudo-random policy (deterministic under a
seed, so simulations are reproducible).

:func:`simulate_skewed` routes through the engine's skewed kernel
(bit-identical under the same seed); :func:`simulate_skewed_scalar`
keeps the original per-access loop as the property-test oracle.
"""

from __future__ import annotations

import numpy as np

from repro.cache.engine.dispatch import simulate_banks
from repro.cache.indexing import IndexingPolicy
from repro.cache.stats import CacheStats

__all__ = ["simulate_skewed", "simulate_skewed_scalar"]


def simulate_skewed(
    blocks: np.ndarray,
    bank_indexings: list[IndexingPolicy],
    seed: int = 0,
) -> CacheStats:
    """Replay a block trace through a skewed-associative cache.

    Parameters
    ----------
    blocks:
        Block-address trace.
    bank_indexings:
        One indexing policy per bank; all banks must produce the same
        number of sets.  Each bank holds one block per set.
    seed:
        Seed for the pseudo-random victim choice on a miss.
    """
    return simulate_banks(blocks, bank_indexings, seed=seed)


def simulate_skewed_scalar(
    blocks: np.ndarray,
    bank_indexings: list[IndexingPolicy],
    seed: int = 0,
) -> CacheStats:
    """Reference implementation: sequential replay over dict banks."""
    if len(bank_indexings) < 2:
        raise ValueError("a skewed cache needs at least two banks")
    sets = bank_indexings[0].num_sets
    for i, pol in enumerate(bank_indexings):
        if pol.num_sets != sets:
            raise ValueError(
                f"bank {i} has {pol.num_sets} sets, expected {sets}"
            )
    blocks = np.asarray(blocks, dtype=np.uint64)
    if len(blocks) == 0:
        return CacheStats(accesses=0, misses=0)
    num_banks = len(bank_indexings)
    indices = [pol.set_index_array(blocks) for pol in bank_indexings]
    # Banks store full block addresses: with per-bank hash functions a
    # common compressed tag would not be bijective, so real skewed
    # caches widen the tag; storing the block address models that.
    banks = [dict() for _ in range(num_banks)]
    rng = np.random.default_rng(seed)
    victims = rng.integers(0, num_banks, size=len(blocks))
    seen: set[int] = set()
    misses = 0
    compulsory = 0
    for i in range(len(blocks)):
        block = int(blocks[i])
        hit = False
        for b in range(num_banks):
            if banks[b].get(int(indices[b][i])) == block:
                hit = True
                break
        if not hit:
            misses += 1
            if block not in seen:
                compulsory += 1
                seen.add(block)
            victim = int(victims[i])
            banks[victim][int(indices[victim][i])] = block
    return CacheStats(accesses=len(blocks), misses=misses, compulsory=compulsory)
