"""Simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats"]


@dataclass(frozen=True)
class CacheStats:
    """Result of replaying a trace through a cache model.

    ``compulsory`` counts first-touch misses when the simulator tracks
    them (all our simulators do); conflict/capacity split requires the
    profiling machinery and is reported there.
    """

    accesses: int
    misses: int
    compulsory: int = 0

    def __post_init__(self):
        if not 0 <= self.misses <= self.accesses:
            raise ValueError(
                f"misses ({self.misses}) must lie in [0, accesses={self.accesses}]"
            )
        if not 0 <= self.compulsory <= self.misses:
            raise ValueError(
                f"compulsory ({self.compulsory}) must lie in [0, misses={self.misses}]"
            )

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def non_compulsory_misses(self) -> int:
        """Misses that an indexing change could potentially remove."""
        return self.misses - self.compulsory

    def misses_per_kuop(self, uops: int) -> float:
        """The paper's misses/K-uop metric (Table 2 'base' columns)."""
        if uops <= 0:
            raise ValueError(f"uops must be positive, got {uops}")
        return 1000.0 * self.misses / uops

    def removed_fraction(self, baseline: "CacheStats") -> float:
        """Percentage of misses removed relative to ``baseline``.

        Negative values mean the hash function *added* misses, which the
        paper notes can happen due to the heuristic (Sec. 6).
        """
        if baseline.misses == 0:
            return 0.0
        return 100.0 * (baseline.misses - self.misses) / baseline.misses

    def __str__(self) -> str:
        return (
            f"{self.misses}/{self.accesses} misses "
            f"({100 * self.miss_rate:.2f}%, {self.compulsory} compulsory)"
        )
