"""Indexing policies: how a block address is split into set index + tag.

Every policy guarantees the paper's bijectivity requirement (Sec. 4):
two distinct block addresses always differ in the tag or in the set
index, so a cache using the policy never aliases two blocks into one
frame.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.gf2.bitvec import mask
from repro.gf2.hashfn import XorHashFunction

__all__ = ["IndexingPolicy", "ModuloIndexing", "XorIndexing", "BitSelectIndexing"]


class IndexingPolicy(ABC):
    """Splits block addresses into (set index, tag)."""

    #: Number of set index bits produced.
    m: int

    @abstractmethod
    def set_index(self, block: int) -> int:
        """Set index of one block address."""

    @abstractmethod
    def tag(self, block: int) -> int:
        """Tag of one block address."""

    @abstractmethod
    def set_index_array(self, blocks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`set_index`."""

    @abstractmethod
    def tag_array(self, blocks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`tag`."""

    def split_array(self, blocks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(set indices, tags) for a block-address array."""
        return self.set_index_array(blocks), self.tag_array(blocks)

    @property
    def num_sets(self) -> int:
        return 1 << self.m


class ModuloIndexing(IndexingPolicy):
    """Conventional indexing: low ``m`` bits are the set, the rest the tag.

    This is the paper's baseline ('base' columns of Tables 2 and 3).
    """

    def __init__(self, m: int):
        if m < 0:
            raise ValueError(f"m must be non-negative, got {m}")
        self.m = m

    def set_index(self, block: int) -> int:
        return block & mask(self.m)

    def tag(self, block: int) -> int:
        return block >> self.m

    def set_index_array(self, blocks: np.ndarray) -> np.ndarray:
        blocks = np.asarray(blocks, dtype=np.uint64)
        return np.bitwise_and(blocks, np.uint64(mask(self.m))).astype(np.uint32)

    def tag_array(self, blocks: np.ndarray) -> np.ndarray:
        blocks = np.asarray(blocks, dtype=np.uint64)
        return blocks >> np.uint64(self.m)

    def __repr__(self) -> str:
        return f"ModuloIndexing(m={self.m})"


class XorIndexing(IndexingPolicy):
    """Indexing through an :class:`XorHashFunction`.

    The tag is the function's derived bit-selecting tag (pivot positions
    of the null space plus all address bits above the hashed window),
    which together with the index is bijective by construction.
    """

    def __init__(self, hash_function: XorHashFunction):
        if not hash_function.is_full_rank:
            raise ValueError(
                "cache indexing requires a full-rank hash function "
                f"(rank {hash_function.rank} < m={hash_function.m})"
            )
        self.hash_function = hash_function
        self.m = hash_function.m

    def set_index(self, block: int) -> int:
        return self.hash_function.apply(block)

    def tag(self, block: int) -> int:
        return self.hash_function.tag_of(block)

    def set_index_array(self, blocks: np.ndarray) -> np.ndarray:
        return self.hash_function.apply_array(np.asarray(blocks, dtype=np.uint64))

    def tag_array(self, blocks: np.ndarray) -> np.ndarray:
        return self.hash_function.tag_array(np.asarray(blocks, dtype=np.uint64))

    def __repr__(self) -> str:
        return f"XorIndexing({self.hash_function!r})"


class BitSelectIndexing(XorIndexing):
    """Indexing by selecting arbitrary address bits (fan-in-1 XOR)."""

    def __init__(self, n: int, selected_bits):
        super().__init__(XorHashFunction.bit_select(n, selected_bits))
        self.selected_bits = tuple(selected_bits)

    def __repr__(self) -> str:
        return f"BitSelectIndexing(bits={self.selected_bits})"
