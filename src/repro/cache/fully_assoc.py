"""Fully-associative LRU cache (Table 3's 'FA' column).

The paper uses FA-LRU as a reference point and observes that optimized
hash functions sometimes beat it — LRU replacement is itself
sub-optimal, so full associativity is not an upper bound on what
indexing can achieve.

:func:`simulate_fully_associative` routes through the engine's LRU
kernel (a fully-associative cache is the single-set case);
:func:`simulate_fully_associative_scalar` keeps the original loop as
the property-test oracle.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.cache.engine.dispatch import simulate_capacity
from repro.cache.stats import CacheStats

__all__ = ["simulate_fully_associative", "simulate_fully_associative_scalar"]


def simulate_fully_associative(blocks: np.ndarray, capacity_blocks: int) -> CacheStats:
    """Replay a block trace through an LRU cache of ``capacity_blocks``."""
    return simulate_capacity(blocks, capacity_blocks)


def simulate_fully_associative_scalar(
    blocks: np.ndarray, capacity_blocks: int
) -> CacheStats:
    """Reference implementation: one OrderedDict, sequential replay."""
    if capacity_blocks < 1:
        raise ValueError(f"capacity must be >= 1 block, got {capacity_blocks}")
    lru: OrderedDict[int, None] = OrderedDict()
    seen: set[int] = set()
    misses = 0
    compulsory = 0
    for block in np.asarray(blocks, dtype=np.uint64):
        block = int(block)
        if block in lru:
            lru.move_to_end(block)
        else:
            misses += 1
            if block not in seen:
                compulsory += 1
                seen.add(block)
            if len(lru) >= capacity_blocks:
                lru.popitem(last=False)
            lru[block] = None
    return CacheStats(accesses=len(blocks), misses=misses, compulsory=compulsory)
