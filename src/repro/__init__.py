"""repro — reproduction of "Application-Specific Reconfigurable
XOR-Indexing to Eliminate Cache Conflict Misses" (Vandierendonck,
Manet & Legat, DATE 2006).

Quickstart::

    from repro import ExperimentSpec, Session, TraceSpec

    spec = ExperimentSpec(trace=TraceSpec("mibench", "fft"))
    result = Session().optimize(spec)
    print(result.summary())
    print(result.hash_function.describe())

The imperative surface remains::

    from repro import CacheGeometry, optimize_for_trace
    from repro.workloads import get_trace

    trace = get_trace("mibench", "fft", kind="data", scale="small")
    result = optimize_for_trace(trace, CacheGeometry.direct_mapped(4096),
                                family="2-in")

Packages:

* :mod:`repro.api` — declarative experiment specs, the ``Session``
  facade, and the stable ``repro-report/v1`` JSON schema;

* :mod:`repro.gf2` — GF(2) linear algebra and XOR hash functions;
* :mod:`repro.trace` — address traces and synthetic generators;
* :mod:`repro.workloads` — MiBench/MediaBench and PowerStone kernels;
* :mod:`repro.cache` — cache geometries, indexing policies, simulators;
* :mod:`repro.profiling` — the Fig. 1 profiler and Eq. 4 estimator;
* :mod:`repro.search` — hill climbing and exhaustive baselines;
* :mod:`repro.hardware` — reconfigurable selector-network models;
* :mod:`repro.core` — the end-to-end optimization pipeline;
* :mod:`repro.pipeline` — content-addressed artifact cache (pluggable
  local/sqlite storage) and the parallel campaign runner;
* :mod:`repro.serve` — the long-lived HTTP optimization service behind
  ``repro serve`` (in-flight dedup, job registry, client helpers);
* :mod:`repro.experiments` — drivers regenerating every paper table/figure.
"""

from repro.api import (
    ExecutionSpec,
    ExperimentSpec,
    GeometrySpec,
    SearchSpec,
    Session,
    SpecError,
    TraceSpec,
)
from repro.cache.geometry import PAPER_GEOMETRIES, PAPER_HASHED_BITS, CacheGeometry
from repro.cache.stats import CacheStats
from repro.core.evaluate import baseline_stats, evaluate_hash_function
from repro.core.optimizer import OptimizationResult, optimize_for_trace
from repro.gf2.hashfn import XorHashFunction
from repro.pipeline import (
    ArtifactCache,
    CampaignTask,
    PipelineContext,
    build_grid,
    run_campaign,
)
from repro.profiling.conflict_profile import ConflictProfile, profile_trace
from repro.trace.trace import Trace

__version__ = "1.0.0"

__all__ = [
    "SpecError",
    "TraceSpec",
    "GeometrySpec",
    "SearchSpec",
    "ExecutionSpec",
    "ExperimentSpec",
    "Session",
    "CacheGeometry",
    "PAPER_GEOMETRIES",
    "PAPER_HASHED_BITS",
    "CacheStats",
    "XorHashFunction",
    "Trace",
    "ConflictProfile",
    "profile_trace",
    "optimize_for_trace",
    "OptimizationResult",
    "evaluate_hash_function",
    "baseline_stats",
    "ArtifactCache",
    "PipelineContext",
    "CampaignTask",
    "build_grid",
    "run_campaign",
    "__version__",
]
