"""Command-line interface: ``python -m repro <command>``.

Every experiment-shaped command is a thin constructor over the
declarative spec API (:mod:`repro.api`): it assembles an
:class:`~repro.api.ExperimentSpec` from its flags, validates it at the
boundary (any problem is one :class:`~repro.api.SpecError` with an
actionable message and exit code 2), and hands it to a
:class:`~repro.api.Session`.  ``--json`` flags emit the stable
``repro-report/v1`` schema to stdout.

Commands:

* ``run``       — execute a TOML/JSON experiment-spec file;
* ``spec``      — scaffold an experiment-spec file from flags;
* ``optimize``  — construct an index function for a bundled workload;
* ``profile``   — conflict-vector profile (Fig. 1) for a workload or an
  on-disk trace file, optionally through the sharded out-of-core
  driver (``--shard-size`` / ``--workers``);
* ``search``    — run the estimate-only search (any strategy, any
  restart count) without the exact verification replay;
* ``campaign``  — run a benchmark x cache x family grid through the
  artifact cache, in parallel across cores;
* ``serve``     — long-lived HTTP optimization service: POST specs to
  ``/v1/jobs``, in-flight dedup by spec digest, reports over HTTP;
* ``tables``    — regenerate the paper's tables/figures;
* ``workloads`` — list the bundled benchmark kernels;
* ``backends``  — list the registered compute backends and which one
  the engine kernels dispatch to;
* ``classify``  — three-Cs miss breakdown for a workload and cache.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path

from repro.api import (
    ExecutionSpec,
    ExperimentSpec,
    GeometrySpec,
    SearchSpec,
    Session,
    SpecError,
    TraceSpec,
    expand_grid,
)
from repro.api.report import profile_report, search_report
from repro.cache.classify import classify_misses
from repro.pipeline import PipelineContext, default_cache_dir, format_campaign
from repro.search.families import FAMILY_CHOICES
from repro.trace import TRACE_FORMATS
from repro.workloads import SUITES, get_workload, workload_names
from repro.workloads.registry import SCALES, TRACE_KINDS


def _fail(error: SpecError) -> int:
    print(f"error: {error}", file=sys.stderr)
    return 2


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("suite", choices=sorted(SUITES), help="benchmark suite")
    parser.add_argument("name", help="kernel name (see `workloads`)")
    parser.add_argument(
        "--kind", choices=TRACE_KINDS, default="data",
        help="which address stream to use",
    )
    parser.add_argument("--scale", choices=SCALES, default="small")
    parser.add_argument("--cache-kb", type=int, default=4, help="cache size in KB")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retries", type=int, default=0,
        help="failed-attempt budget per task (exceptions, timeouts, "
        "dead workers); digest-neutral",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="fail a task attempt after this many seconds and recycle "
        "its worker (parallel runs only)",
    )
    parser.add_argument(
        "--on-error", choices=("raise", "skip", "retry"), default="raise",
        help="post-budget policy: abort (raise), record a failed row "
        "and continue (skip), or raise with a minimum retry budget "
        "(retry)",
    )


def _resilience_overrides(args: argparse.Namespace) -> dict:
    """The non-default resilience flags, as with_execution kwargs."""
    overrides = {}
    if getattr(args, "retries", 0):
        overrides["retries"] = args.retries
    if getattr(args, "task_timeout", None) is not None:
        overrides["task_timeout"] = args.task_timeout
    if getattr(args, "on_error", "raise") != "raise":
        overrides["on_error"] = args.on_error
    return overrides


def _spec_from_args(args: argparse.Namespace, **search_overrides) -> ExperimentSpec:
    """The spec an ``optimize``/``search`` invocation denotes.

    Raises :class:`SpecError` — the single validation point for every
    flag combination, before any expensive work starts.
    """
    search = dict(
        family=getattr(args, "family", "2-in"),
        strategy=getattr(args, "strategy", "steepest"),
        restarts=getattr(args, "restarts", 0),
        seed=getattr(args, "search_seed", 0) or 0,
        guard=getattr(args, "guard", False),
        max_steps=getattr(args, "max_steps", None),
    )
    search.update(search_overrides)
    return ExperimentSpec(
        trace=TraceSpec(
            suite=args.suite, benchmark=args.name, kind=args.kind,
            scale=args.scale, seed=args.seed,
        ),
        geometry=GeometrySpec(cache_bytes=args.cache_kb * 1024),
        search=SearchSpec(**search),
        execution=ExecutionSpec(cache_dir=getattr(args, "cache_dir", None)),
    )


def _print_report(payload: dict) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def cmd_optimize(args: argparse.Namespace) -> int:
    try:
        spec = _spec_from_args(args)
    except SpecError as error:
        return _fail(error)
    result = Session(cache_dir=args.cache_dir).optimize(spec)
    if args.json:
        _print_report(result.to_json())
        return 0
    print(result.summary())
    print(f"search: {result.search.steps} steps, "
          f"{result.search.evaluations} evaluations, "
          f"{result.search.seconds:.2f}s")
    print()
    print(result.hash_function.describe())
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    from repro.profiling.conflict_profile import profile_trace
    from repro.search import hill_climb_front

    try:
        spec = _spec_from_args(args)
    except SpecError as error:
        return _fail(error)
    trace = spec.trace.resolve()
    geometry = spec.geometry.resolve()
    family = spec.search.resolve_family(geometry.index_bits)
    strategy = spec.search.resolve_strategy()
    profile = profile_trace(trace, geometry, spec.search.n)
    front = hill_climb_front(
        profile, family, restarts=spec.search.restarts, seed=spec.search.seed,
        max_steps=spec.search.max_steps, strategy=strategy,
    )
    if args.json:
        _print_report(search_report(spec, front))
        return 0
    best = min(front, key=lambda result: result.estimated_misses)
    print(f"{trace.name} @ {geometry}: family {family.name}, "
          f"strategy {strategy.name}")
    for i, result in enumerate(front):
        label = "conventional" if i == 0 else f"restart {i}"
        marker = " <- best" if result is best else ""
        print(f"  {label:>12}: est {result.estimated_misses} "
              f"(from {result.start_misses}), {result.steps} steps, "
              f"{result.evaluations} evaluations, "
              f"{result.seconds:.2f}s{marker}")
    print()
    print(best.function.describe())
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    try:
        if args.trace_file is not None:
            if args.suite or args.name:
                raise SpecError(
                    "profile takes either a registry workload (suite + "
                    "name) or --trace-file, not both",
                    field="trace.path",
                )
            trace_spec = TraceSpec(
                path=args.trace_file, format=args.format, kind=args.kind
            )
        else:
            if not args.suite or not args.name:
                raise SpecError(
                    "name a workload (repro profile <suite> <name>) or an "
                    "on-disk trace (--trace-file PATH)"
                )
            if args.format:
                raise SpecError(
                    "--format only applies to --trace-file",
                    field="trace.format",
                )
            trace_spec = TraceSpec(
                suite=args.suite, benchmark=args.name, kind=args.kind,
                scale=args.scale, seed=args.seed,
            )
        spec = ExperimentSpec(
            trace=trace_spec,
            geometry=GeometrySpec(
                cache_bytes=args.cache_kb * 1024, block_size=args.block_size
            ),
            search=SearchSpec(n=args.n),
            execution=ExecutionSpec(
                shard_size=args.shard_size, workers=args.workers,
                cache_dir=args.cache_dir, **_resilience_overrides(args),
            ),
        )
        trace = spec.trace.resolve()
    except SpecError as error:
        return _fail(error)
    geometry = spec.geometry.resolve()
    session = Session(cache_dir=args.cache_dir, workers=args.workers)
    context = session.context()
    sharded = None
    if spec.execution.shard_size is not None:
        sharded = context.profile_sharded(
            trace, geometry, spec.search.n,
            shard_size=spec.execution.shard_size,
            workers=spec.execution.workers,
            retries=spec.execution.retries,
            task_timeout=spec.execution.task_timeout,
            on_error=spec.execution.on_error,
        )
        profile = sharded.profile
    else:
        profile = context.profile(trace, geometry, spec.search.n)
    if args.json:
        _print_report(
            profile_report(
                spec, profile, trace_digest=trace.digest, sharded=sharded
            )
        )
    else:
        print(f"{trace.name or spec.trace.label} @ {geometry}, "
              f"window n={spec.search.n}")
        print(f"  accesses:         {profile.accesses}")
        print(f"  compulsory:       {profile.compulsory}")
        print(f"  capacity:         {profile.capacity}")
        print(f"  beyond window:    {profile.beyond_window}")
        print(f"  conflict weight:  {profile.total_weight} over "
              f"{profile.num_distinct_vectors} distinct vectors")
        if sharded is not None:
            print(f"  sharding:         {len(sharded.plan)} shard(s) x "
                  f"{sharded.plan.shard_size} accesses, "
                  f"workers {sharded.workers}, "
                  f"{sharded.recomputed_shards} recomputed / "
                  f"{sharded.cached_shards} cached, {sharded.seconds:.2f}s")
    if args.expect_cached:
        if sharded is not None:
            cached = sharded.fully_cached
            detail = (f"{sharded.recomputed_shards} shard(s) and "
                      f"{sharded.recomputed_scans} scan(s) recomputed")
        else:
            totals = context.cache_stats()
            recomputed = sum(
                per_kind.get("misses", 0) + per_kind.get("stores", 0)
                for per_kind in totals.values()
            )
            cached = args.cache_dir is not None and recomputed == 0
            detail = str(totals or "no cache directory")
        if not cached:
            print(
                "FAIL: expected a fully cached replay but artifacts were "
                f"recomputed ({detail})",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = ExperimentSpec.load(args.spec_file)
    except SpecError as error:
        return _fail(error)
    if args.cache_dir:
        spec = spec.with_execution(cache_dir=args.cache_dir)
    overrides = _resilience_overrides(args)
    if overrides:
        spec = spec.with_execution(**overrides)
    if args.dry_run:
        print(f"spec ok: {spec.describe()}")
        print(f"digest:  {spec.digest}")
        return 0
    session = Session(
        cache_dir=spec.execution.cache_dir,
        workers=args.workers if args.workers is not None
        else spec.execution.workers,
    )
    result = session.optimize(spec)
    if args.json:
        _print_report(result.to_json())
    else:
        print(result.summary())
        print()
        print(result.hash_function.describe())
    if args.expect_cached:
        totals = session.cache_stats()
        recomputed = sum(
            per_kind.get("misses", 0) + per_kind.get("stores", 0)
            for per_kind in totals.values()
        )
        if recomputed or spec.execution.cache_dir is None:
            print(
                "FAIL: expected a fully cached replay but artifacts were "
                f"recomputed ({totals or 'no cache directory'})",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_spec(args: argparse.Namespace) -> int:
    try:
        spec = ExperimentSpec(
            trace=TraceSpec(
                suite=args.suite, benchmark=args.benchmark, kind=args.kind,
                scale=args.scale, seed=args.seed,
            ),
            geometry=GeometrySpec(cache_bytes=args.cache_kb * 1024),
            search=SearchSpec(
                family=args.family, strategy=args.strategy,
                restarts=args.restarts, guard=args.guard,
            ),
            execution=ExecutionSpec(
                workers=args.workers, cache_dir=args.cache_dir
            ),
        )
    except SpecError as error:
        return _fail(error)
    text = spec.to_toml(
        header=(
            "repro experiment spec (schema: see `repro run --help`)\n"
            f"{spec.describe()}\n"
            "run with:  repro run <this file> [--json]"
        )
    )
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    trace = get_workload(args.suite, args.name, args.scale, args.seed).trace(args.kind)
    geometry = GeometrySpec(cache_bytes=args.cache_kb * 1024).resolve()
    blocks = trace.block_addresses(geometry.block_size)
    breakdown = classify_misses(blocks, geometry)
    print(f"{trace.name} ({args.kind}) @ {geometry}")
    print(breakdown.format())
    return 0


def cmd_workloads(_args: argparse.Namespace) -> int:
    for suite in sorted(SUITES):
        print(f"{suite}:")
        for name in workload_names(suite):
            print(f"  {name}")
    return 0


def cmd_backends(args: argparse.Namespace) -> int:
    from repro.backend import BACKEND_ENV_VAR, backend_status

    rows = backend_status()
    if getattr(args, "json", False):
        print(json.dumps({"backends": rows}, indent=2))
        return 0
    width = max(len(row["name"]) for row in rows)
    for row in rows:
        marker = "*" if row["active"] else " "
        state = "available" if row["available"] else "unavailable"
        print(
            f"{marker} {row['name'].ljust(width)}  {state:<11}  "
            f"{row['description']}"
        )
    print(
        f"\n* = active (override with {BACKEND_ENV_VAR}=<name> or a "
        "spec's execution.backend)"
    )
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    try:
        specs = expand_grid(
            {
                "suite": args.suite,
                "benchmarks": list(args.benchmarks) if args.benchmarks else None,
                "kinds": list(args.kinds),
                "cache_bytes": [kb * 1024 for kb in args.cache_kb],
                "families": list(args.families),
                "strategies": [args.strategy],
                "scale": args.scale,
                "workload_seed": args.seed,
                "guard": args.guard,
            }
        )
    except SpecError as error:
        return _fail(error)
    if not specs:
        print("error: the campaign grid is empty", file=sys.stderr)
        return 2
    overrides = _resilience_overrides(args)
    if overrides:
        specs = [spec.with_execution(**overrides) for spec in specs]
    session = Session(
        cache_dir=args.cache_dir if args.cache_dir else default_cache_dir(),
        workers=args.workers,
    )
    # Grid semantics: every cell derives its own deterministic seed
    # from its identity and --seed, as before the spec API existed.
    result = session.campaign(specs, base_seed=args.seed, derive_seeds=True)
    report = result.to_json()
    if args.json == "-":
        _print_report(report)
    else:
        print(format_campaign(result))
        if args.json:
            Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
            print(f"wrote {args.json}")
    if args.expect_cached and not result.fully_cached:
        totals = result.cache_totals()
        print(
            f"FAIL: expected a fully cached replay but {totals['misses']} "
            f"artifact(s) were recomputed ({totals['stores']} stored)",
            file=sys.stderr,
        )
        return 1
    return 0


def _tables_session(args: argparse.Namespace):
    """Artifact-cache session for the tables command (if requested)."""
    if args.cache_dir is None:
        return contextlib.nullcontext()
    return PipelineContext(args.cache_dir).activate()


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments import (
        format_counting,
        format_general_vs_perm,
        format_table1,
        format_table2,
        format_table3,
        run_general_vs_perm,
        run_table2,
        run_table3,
    )

    which = set(args.only) if args.only else {"counting", "table1", "table2", "table3", "general-vs-perm"}
    with _tables_session(args):
        if "counting" in which:
            print(format_counting())
            print()
        if "table1" in which:
            print(format_table1())
            print()
        if "general-vs-perm" in which:
            print(format_general_vs_perm(run_general_vs_perm(scale=args.scale)))
            print()
        if "table2" in which:
            print(format_table2(run_table2(
                kind="data", scale=args.scale, workers=args.workers)))
            print()
            print(format_table2(run_table2(
                kind="instruction", scale=args.scale, workers=args.workers)))
            print()
        if "table3" in which:
            print(format_table3(run_table3(
                scale=args.scale, max_refs=40_000, workers=args.workers)))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ReproServer

    # Session workers stay None so each spec's own execution.workers
    # governs sharded profiling; --workers bounds the job thread pool.
    session = Session(cache_dir=args.cache_dir, storage=args.storage)
    server = ReproServer(
        session=session,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        retries=args.retries,
        own_session=True,
    )
    server.run()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Application-specific reconfigurable XOR-indexing (DATE 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run", help="execute a TOML/JSON experiment-spec file"
    )
    p_run.add_argument("spec_file", help="path to experiment.toml / .json")
    p_run.add_argument(
        "--dry-run", action="store_true",
        help="validate the spec and print what it would run, then exit",
    )
    p_run.add_argument(
        "--json", action="store_true",
        help="emit the repro-report/v1 result to stdout",
    )
    p_run.add_argument(
        "--cache-dir", default=None,
        help="override the spec's execution.cache_dir",
    )
    p_run.add_argument(
        "--workers", type=int, default=None,
        help="override the spec's execution.workers",
    )
    p_run.add_argument(
        "--expect-cached", action="store_true",
        help="exit non-zero if any artifact had to be (re)computed",
    )
    _add_resilience_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_spec = sub.add_parser(
        "spec", help="scaffold an experiment-spec file from flags"
    )
    p_spec.add_argument("--suite", choices=sorted(SUITES), default="mibench")
    p_spec.add_argument("--benchmark", default="fft")
    p_spec.add_argument("--kind", choices=TRACE_KINDS, default="data")
    p_spec.add_argument("--scale", choices=SCALES, default="small")
    p_spec.add_argument("--cache-kb", type=int, default=4)
    p_spec.add_argument("--seed", type=int, default=0, help="workload seed")
    p_spec.add_argument("--family", default="2-in", choices=FAMILY_CHOICES)
    p_spec.add_argument("--strategy", default="steepest")
    p_spec.add_argument("--restarts", type=int, default=0)
    p_spec.add_argument("--guard", action="store_true")
    p_spec.add_argument("--workers", type=int, default=None)
    p_spec.add_argument("--cache-dir", default=None)
    p_spec.add_argument(
        "-o", "--output", default=None,
        help="write the spec here instead of stdout",
    )
    p_spec.set_defaults(func=cmd_spec)

    p_opt = sub.add_parser("optimize", help="construct an index function")
    _add_workload_args(p_opt)
    p_opt.add_argument("--family", default="2-in", choices=FAMILY_CHOICES)
    p_opt.add_argument(
        "--guard", action="store_true",
        help="revert to modulo indexing if the function adds misses (Sec. 6)",
    )
    p_opt.add_argument(
        "--strategy", default="steepest",
        help="search strategy: steepest (paper), first-improvement, "
             "beam[:K], anneal[:ITERS[:SEED]], branch-bound[:NODES] "
             "(certified optimum), portfolio[:K] (lockstep race)",
    )
    p_opt.add_argument("--restarts", type=int, default=0)
    p_opt.add_argument(
        "--search-seed", type=int, default=0, help="hill-climb restart seed"
    )
    p_opt.add_argument(
        "--cache-dir", default=None,
        help="read/write artifacts at this directory",
    )
    p_opt.add_argument(
        "--json", action="store_true",
        help="emit the repro-report/v1 result to stdout",
    )
    p_opt.set_defaults(func=cmd_optimize)

    p_prof = sub.add_parser(
        "profile",
        help="conflict-vector profile (Fig. 1) for a workload or trace file",
    )
    p_prof.add_argument(
        "suite", nargs="?", choices=sorted(SUITES), default=None,
        help="benchmark suite (omit when using --trace-file)",
    )
    p_prof.add_argument(
        "name", nargs="?", default=None,
        help="kernel name (see `workloads`)",
    )
    p_prof.add_argument(
        "--trace-file", default=None, metavar="PATH",
        help="profile an on-disk trace instead of a registry workload "
             "(.bin memory-maps out of core; npz/text/dinero/lackey load "
             "through their readers)",
    )
    p_prof.add_argument(
        "--format", default=None, choices=TRACE_FORMATS,
        help="trace-file format (default: inferred from the suffix)",
    )
    p_prof.add_argument(
        "--kind", choices=TRACE_KINDS, default="data",
        help="which address stream to use",
    )
    p_prof.add_argument("--scale", choices=SCALES, default="small")
    p_prof.add_argument("--seed", type=int, default=0, help="workload seed")
    p_prof.add_argument("--cache-kb", type=int, default=4, help="cache size in KB")
    p_prof.add_argument("--block-size", type=int, default=4)
    p_prof.add_argument(
        "--n", type=int, default=16,
        help="conflict-window length (paper's n)",
    )
    p_prof.add_argument(
        "--shard-size", type=int, default=None,
        help="run the out-of-core sharded driver with this many "
             "accesses per shard (bit-identical to the single pass)",
    )
    p_prof.add_argument(
        "--workers", type=int, default=None,
        help="process count for sharded profiling (1 = serial)",
    )
    p_prof.add_argument(
        "--cache-dir", default=None,
        help="read/write per-shard artifacts at this directory",
    )
    p_prof.add_argument(
        "--json", action="store_true",
        help="emit the repro-report/v1 profile report to stdout",
    )
    p_prof.add_argument(
        "--expect-cached", action="store_true",
        help="exit non-zero if any shard had to be (re)computed "
             "(CI warm-cache check)",
    )
    _add_resilience_args(p_prof)
    p_prof.set_defaults(func=cmd_profile)

    p_search = sub.add_parser(
        "search",
        help="estimate-only hash search with a pluggable strategy",
    )
    _add_workload_args(p_search)
    p_search.add_argument("--family", default="2-in", choices=FAMILY_CHOICES)
    p_search.add_argument(
        "--strategy", default="steepest",
        help="search strategy: steepest (paper), first-improvement, "
             "beam[:K], anneal[:ITERS[:SEED]], branch-bound[:NODES] "
             "(certified optimum), portfolio[:K] (lockstep race)",
    )
    p_search.add_argument(
        "--restarts", type=int, default=0,
        help="random restarts beyond the conventional start "
             "(advanced in lockstep for point strategies)",
    )
    p_search.add_argument(
        "--search-seed", type=int, default=0, help="hill-climb restart seed"
    )
    p_search.add_argument(
        "--max-steps", type=int, default=None,
        help="bound on accepted search steps",
    )
    p_search.add_argument(
        "--json", action="store_true",
        help="emit the repro-report/v1 search front to stdout",
    )
    p_search.set_defaults(func=cmd_search)

    p_cls = sub.add_parser("classify", help="three-Cs miss breakdown")
    _add_workload_args(p_cls)
    p_cls.set_defaults(func=cmd_classify)

    p_wl = sub.add_parser("workloads", help="list bundled kernels")
    p_wl.set_defaults(func=cmd_workloads)

    p_be = sub.add_parser(
        "backends", help="list compute backends and the active one"
    )
    p_be.add_argument(
        "--json", action="store_true", help="emit the status rows as JSON"
    )
    p_be.set_defaults(func=cmd_backends)

    p_camp = sub.add_parser(
        "campaign",
        help="run a benchmark x cache x family grid through the artifact cache",
    )
    p_camp.add_argument("--suite", choices=sorted(SUITES), default="mibench")
    p_camp.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="kernel names (default: the whole suite)",
    )
    p_camp.add_argument(
        "--kinds", nargs="*", choices=TRACE_KINDS, default=["data"]
    )
    p_camp.add_argument(
        "--cache-kb", nargs="*", type=int, default=[1, 4, 16],
        help="cache sizes in KB",
    )
    p_camp.add_argument(
        "--families", nargs="*", default=["2-in"], choices=FAMILY_CHOICES,
    )
    p_camp.add_argument(
        "--strategy", default="steepest",
        help="search strategy for every task (default: the paper's "
             "steepest descent)",
    )
    p_camp.add_argument("--scale", choices=SCALES, default="small")
    p_camp.add_argument("--seed", type=int, default=0)
    p_camp.add_argument("--guard", action="store_true")
    p_camp.add_argument(
        "--workers", type=int, default=None,
        help="process count (default: one per core; 1 = serial)",
    )
    p_camp.add_argument(
        "--cache-dir", default=None,
        help="artifact cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-xor-indexing)",
    )
    p_camp.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="FILE",
        help="emit the repro-report/v1 campaign report: bare --json "
             "prints to stdout, --json FILE writes the file",
    )
    p_camp.add_argument(
        "--expect-cached", action="store_true",
        help="exit non-zero if any artifact had to be (re)computed "
             "(CI warm-cache check)",
    )
    _add_resilience_args(p_camp)
    p_camp.set_defaults(func=cmd_campaign)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived HTTP optimization service (POST specs, GET reports)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port", type=int, default=8738,
        help="TCP port (default 8738; 0 picks a free port)",
    )
    p_serve.add_argument(
        "--cache-dir", default=None,
        help="artifact-cache root shared by every job (and, with sqlite "
        "storage, by other service replicas); default: in-memory only",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="job worker threads (default 2)",
    )
    p_serve.add_argument(
        "--storage", choices=("local", "sqlite"), default="sqlite",
        help="cache storage backend (default sqlite: one WAL-journaled "
        "index safe for many concurrent replicas; pass local to reuse an "
        "existing directory-layout cache)",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="max jobs in flight before submissions get 503 (default 64)",
    )
    p_serve.add_argument(
        "--retries", type=int, default=0,
        help="default retry budget for jobs whose spec sets none",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_tab = sub.add_parser("tables", help="regenerate paper tables")
    p_tab.add_argument(
        "--scale", choices=("tiny", "small", "default"), default="tiny"
    )
    p_tab.add_argument(
        "--only", nargs="*", default=None,
        choices=("counting", "table1", "table2", "table3", "general-vs-perm"),
    )
    p_tab.add_argument(
        "--workers", type=int, default=1,
        help="process count for the table grids (1 = serial)",
    )
    p_tab.add_argument(
        "--cache-dir", default=None,
        help="run all drivers through an artifact cache at this directory",
    )
    p_tab.set_defaults(func=cmd_tables)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except SpecError as error:
        return _fail(error)


if __name__ == "__main__":
    sys.exit(main())
