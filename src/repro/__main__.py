"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``optimize``  — construct an index function for a bundled workload;
* ``search``    — run the estimate-only search (any strategy, any
  restart count) without the exact verification replay;
* ``campaign``  — run a benchmark x cache x family grid through the
  artifact cache, in parallel across cores;
* ``tables``    — regenerate the paper's tables/figures;
* ``workloads`` — list the bundled benchmark kernels;
* ``classify``  — three-Cs miss breakdown for a workload and cache.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path

from repro import CacheGeometry, optimize_for_trace
from repro.cache.classify import classify_misses
from repro.pipeline import (
    PipelineContext,
    build_grid,
    default_cache_dir,
    format_campaign,
    run_campaign,
)
from repro.workloads import SUITES, get_workload, workload_names


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("suite", choices=sorted(SUITES), help="benchmark suite")
    parser.add_argument("name", help="kernel name (see `workloads`)")
    parser.add_argument(
        "--kind", choices=("data", "instruction"), default="data",
        help="which address stream to use",
    )
    parser.add_argument(
        "--scale", choices=("tiny", "small", "default", "large"), default="small"
    )
    parser.add_argument("--cache-kb", type=int, default=4, help="cache size in KB")
    parser.add_argument("--seed", type=int, default=0)


def cmd_optimize(args: argparse.Namespace) -> int:
    trace = get_workload(args.suite, args.name, args.scale, args.seed).trace(args.kind)
    geometry = CacheGeometry.direct_mapped(args.cache_kb * 1024)
    result = optimize_for_trace(
        trace, geometry, family=args.family, guard=args.guard
    )
    print(result.summary())
    print(f"search: {result.search.steps} steps, "
          f"{result.search.evaluations} evaluations, "
          f"{result.search.seconds:.2f}s")
    print()
    print(result.hash_function.describe())
    return 0


def _resolve_strategy(spec: str):
    """Validate a --strategy spec before any expensive work.

    Returns the strategy instance or ``None`` after printing a clean
    error — a typo must not surface as a traceback from a worker
    process minutes into a campaign.
    """
    from repro.search import strategy_for_name

    try:
        return strategy_for_name(spec)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return None


def cmd_search(args: argparse.Namespace) -> int:
    from repro.cache.geometry import PAPER_HASHED_BITS
    from repro.profiling.conflict_profile import profile_trace
    from repro.search import family_for_name, hill_climb_front

    strategy = _resolve_strategy(args.strategy)
    if strategy is None:
        return 2
    trace = get_workload(args.suite, args.name, args.scale, args.seed).trace(args.kind)
    geometry = CacheGeometry.direct_mapped(args.cache_kb * 1024)
    family = family_for_name(
        args.family, PAPER_HASHED_BITS, geometry.index_bits
    )
    profile = profile_trace(trace, geometry, PAPER_HASHED_BITS)
    front = hill_climb_front(
        profile, family, restarts=args.restarts, seed=args.seed,
        max_steps=args.max_steps, strategy=strategy,
    )
    best = min(front, key=lambda result: result.estimated_misses)
    print(f"{trace.name} @ {geometry}: family {family.name}, "
          f"strategy {strategy.name}")
    for i, result in enumerate(front):
        label = "conventional" if i == 0 else f"restart {i}"
        marker = " <- best" if result is best else ""
        print(f"  {label:>12}: est {result.estimated_misses} "
              f"(from {result.start_misses}), {result.steps} steps, "
              f"{result.evaluations} evaluations, "
              f"{result.seconds:.2f}s{marker}")
    print()
    print(best.function.describe())
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    trace = get_workload(args.suite, args.name, args.scale, args.seed).trace(args.kind)
    geometry = CacheGeometry.direct_mapped(args.cache_kb * 1024)
    blocks = trace.block_addresses(geometry.block_size)
    breakdown = classify_misses(blocks, geometry)
    print(f"{trace.name} ({args.kind}) @ {geometry}")
    print(breakdown.format())
    return 0


def cmd_workloads(_args: argparse.Namespace) -> int:
    for suite in sorted(SUITES):
        print(f"{suite}:")
        for name in workload_names(suite):
            print(f"  {name}")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    if _resolve_strategy(args.strategy) is None:
        return 2
    tasks = build_grid(
        suite=args.suite,
        benchmarks=tuple(args.benchmarks) if args.benchmarks else None,
        kinds=tuple(args.kinds),
        cache_sizes=tuple(kb * 1024 for kb in args.cache_kb),
        families=tuple(args.families),
        scale=args.scale,
        workload_seed=args.seed,
        guard=args.guard,
        strategy=args.strategy,
    )
    if not tasks:
        print("error: the campaign grid is empty", file=sys.stderr)
        return 2
    result = run_campaign(
        tasks,
        cache_dir=args.cache_dir if args.cache_dir else default_cache_dir(),
        workers=args.workers,
        base_seed=args.seed,
    )
    print(format_campaign(result))
    if args.json:
        Path(args.json).write_text(json.dumps(result.to_json(), indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.expect_cached and not result.fully_cached:
        totals = result.cache_totals()
        print(
            f"FAIL: expected a fully cached replay but {totals['misses']} "
            f"artifact(s) were recomputed ({totals['stores']} stored)",
            file=sys.stderr,
        )
        return 1
    return 0


def _tables_session(args: argparse.Namespace):
    """Artifact-cache session for the tables command (if requested)."""
    if args.cache_dir is None:
        return contextlib.nullcontext()
    return PipelineContext(args.cache_dir).activate()


def cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments import (
        format_counting,
        format_general_vs_perm,
        format_table1,
        format_table2,
        format_table3,
        run_general_vs_perm,
        run_table2,
        run_table3,
    )

    which = set(args.only) if args.only else {"counting", "table1", "table2", "table3", "general-vs-perm"}
    with _tables_session(args):
        if "counting" in which:
            print(format_counting())
            print()
        if "table1" in which:
            print(format_table1())
            print()
        if "general-vs-perm" in which:
            print(format_general_vs_perm(run_general_vs_perm(scale=args.scale)))
            print()
        if "table2" in which:
            print(format_table2(run_table2(
                kind="data", scale=args.scale, workers=args.workers)))
            print()
            print(format_table2(run_table2(
                kind="instruction", scale=args.scale, workers=args.workers)))
            print()
        if "table3" in which:
            print(format_table3(run_table3(
                scale=args.scale, max_refs=40_000, workers=args.workers)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Application-specific reconfigurable XOR-indexing (DATE 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_opt = sub.add_parser("optimize", help="construct an index function")
    _add_workload_args(p_opt)
    p_opt.add_argument(
        "--family", default="2-in",
        choices=("1-in", "2-in", "4-in", "16-in", "general"),
    )
    p_opt.add_argument(
        "--guard", action="store_true",
        help="revert to modulo indexing if the function adds misses (Sec. 6)",
    )
    p_opt.set_defaults(func=cmd_optimize)

    p_search = sub.add_parser(
        "search",
        help="estimate-only hash search with a pluggable strategy",
    )
    _add_workload_args(p_search)
    p_search.add_argument(
        "--family", default="2-in",
        choices=("1-in", "2-in", "4-in", "16-in", "general"),
    )
    p_search.add_argument(
        "--strategy", default="steepest",
        help="search strategy: steepest (paper), first-improvement, "
             "beam[:K], anneal[:ITERS[:SEED]]",
    )
    p_search.add_argument(
        "--restarts", type=int, default=0,
        help="random restarts beyond the conventional start "
             "(advanced in lockstep for point strategies)",
    )
    p_search.add_argument(
        "--max-steps", type=int, default=None,
        help="bound on accepted search steps",
    )
    p_search.set_defaults(func=cmd_search)

    p_cls = sub.add_parser("classify", help="three-Cs miss breakdown")
    _add_workload_args(p_cls)
    p_cls.set_defaults(func=cmd_classify)

    p_wl = sub.add_parser("workloads", help="list bundled kernels")
    p_wl.set_defaults(func=cmd_workloads)

    p_camp = sub.add_parser(
        "campaign",
        help="run a benchmark x cache x family grid through the artifact cache",
    )
    p_camp.add_argument("--suite", choices=sorted(SUITES), default="mibench")
    p_camp.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="kernel names (default: the whole suite)",
    )
    p_camp.add_argument(
        "--kinds", nargs="*", choices=("data", "instruction"), default=["data"]
    )
    p_camp.add_argument(
        "--cache-kb", nargs="*", type=int, default=[1, 4, 16],
        help="cache sizes in KB",
    )
    p_camp.add_argument(
        "--families", nargs="*", default=["2-in"],
        choices=("1-in", "2-in", "4-in", "16-in", "general"),
    )
    p_camp.add_argument(
        "--strategy", default="steepest",
        help="search strategy for every task (default: the paper's "
             "steepest descent)",
    )
    p_camp.add_argument(
        "--scale", choices=("tiny", "small", "default", "large"), default="small"
    )
    p_camp.add_argument("--seed", type=int, default=0)
    p_camp.add_argument("--guard", action="store_true")
    p_camp.add_argument(
        "--workers", type=int, default=None,
        help="process count (default: one per core; 1 = serial)",
    )
    p_camp.add_argument(
        "--cache-dir", default=None,
        help="artifact cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-xor-indexing)",
    )
    p_camp.add_argument(
        "--json", default=None, help="also write results to this JSON file"
    )
    p_camp.add_argument(
        "--expect-cached", action="store_true",
        help="exit non-zero if any artifact had to be (re)computed "
             "(CI warm-cache check)",
    )
    p_camp.set_defaults(func=cmd_campaign)

    p_tab = sub.add_parser("tables", help="regenerate paper tables")
    p_tab.add_argument(
        "--scale", choices=("tiny", "small", "default"), default="tiny"
    )
    p_tab.add_argument(
        "--only", nargs="*", default=None,
        choices=("counting", "table1", "table2", "table3", "general-vs-perm"),
    )
    p_tab.add_argument(
        "--workers", type=int, default=1,
        help="process count for the table grids (1 = serial)",
    )
    p_tab.add_argument(
        "--cache-dir", default=None,
        help="run all drivers through an artifact cache at this directory",
    )
    p_tab.set_defaults(func=cmd_tables)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
