"""Paper Table 1: switches required for reconfigurable indexing.

Exactly reproducible: the counts are analytic (n = 16, 4-byte blocks,
1/4/16 KB caches giving m = 8/10/12).  The driver reports both the
closed forms and the switch counts of actually-constructed networks,
which must agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import format_table
from repro.hardware.network import build_network
from repro.hardware.switches import switch_counts

__all__ = ["PAPER_TABLE1", "run_table1", "format_table1", "Table1Cell"]

#: The published numbers (scheme -> cache label -> switches).
PAPER_TABLE1 = {
    "bit-select": {"1KB": 256, "4KB": 256, "16KB": 256},
    "optimized bit-select": {"1KB": 144, "4KB": 136, "16KB": 112},
    "general XOR": {"1KB": 252, "4KB": 261, "16KB": 250},
    "permutation-based": {"1KB": 72, "4KB": 70, "16KB": 60},
}

_CONFIGS = {"1KB": 8, "4KB": 10, "16KB": 12}
_HASHED_BITS = 16


@dataclass(frozen=True)
class Table1Cell:
    scheme: str
    cache: str
    m: int
    closed_form: int
    constructed: int
    paper: int

    @property
    def matches_paper(self) -> bool:
        return self.closed_form == self.paper and self.constructed == self.paper


def run_table1() -> list[Table1Cell]:
    """Recompute every cell of Table 1."""
    cells = []
    for cache, m in _CONFIGS.items():
        forms = switch_counts(_HASHED_BITS, m)
        for scheme, count in forms.items():
            network = build_network(scheme, _HASHED_BITS, m)
            cells.append(
                Table1Cell(
                    scheme=scheme,
                    cache=cache,
                    m=m,
                    closed_form=count,
                    constructed=network.switch_count,
                    paper=PAPER_TABLE1[scheme][cache],
                )
            )
    return cells


def format_table1(cells: list[Table1Cell] | None = None) -> str:
    """Render in the paper's layout (rows = schemes, columns = sizes)."""
    cells = cells if cells is not None else run_table1()
    by_scheme: dict[str, dict[str, Table1Cell]] = {}
    for cell in cells:
        by_scheme.setdefault(cell.scheme, {})[cell.cache] = cell
    rows = []
    for scheme, per_cache in by_scheme.items():
        row = [scheme]
        for cache in _CONFIGS:
            cell = per_cache[cache]
            mark = "" if cell.matches_paper else " (!)"
            row.append(f"{cell.closed_form}{mark}")
        rows.append(row)
    header = ["scheme"] + [
        f"{cache} (m={m})" for cache, m in _CONFIGS.items()
    ]
    return format_table(
        header, rows, title="Table 1: switches for reconfigurable indexing (n=16)"
    )
