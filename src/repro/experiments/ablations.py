"""Ablations of the paper's design choices.

The paper motivates several decisions qualitatively; these drivers
measure them:

* **estimator fidelity** — how well the Eq. 4 estimate tracks exact
  simulation across candidate functions (Sec. 3.3 admits the profile
  cannot be exact for all functions simultaneously);
* **capacity filter** — what happens when capacity misses are *not*
  filtered out of the profile (the optimizer chases unfixable misses);
* **restarts** — how much the single-start local optimum costs;
* **search strategies** — what the alternatives to the paper's
  steepest descent (first-improvement, beam, annealing) buy on real
  profiles (see :mod:`repro.search.strategies`);
* **search timing** — the paper claims 0.5-10 s per construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.cache import engine
from repro.cache.geometry import CacheGeometry, PAPER_HASHED_BITS
from repro.core.evaluate import baseline_stats, evaluate_hash_function
from repro.profiling.conflict_profile import profile_blocks, profile_trace
from repro.profiling.estimator import MissEstimator
from repro.search.families import PermutationFamily, family_for_name
from repro.search.hill_climb import hill_climb, hill_climb_restarts
from repro.search.strategies import strategy_for_name
from repro.trace.trace import Trace

__all__ = [
    "EstimatorFidelity",
    "estimator_fidelity",
    "CapacityFilterAblation",
    "capacity_filter_ablation",
    "RestartsAblation",
    "restarts_ablation",
    "StrategyOutcome",
    "strategy_comparison",
    "SearchTiming",
    "search_timing",
    "OptimalityGap",
    "optimality_gap",
]


@dataclass(frozen=True)
class EstimatorFidelity:
    """Rank agreement between Eq. 4 estimates and exact miss counts."""

    sampled_functions: int
    spearman_rho: float
    estimated: list[int]
    exact: list[int]

    @property
    def ranks_well(self) -> bool:
        """The estimate only needs to *rank* candidates correctly."""
        return self.spearman_rho > 0.5


def estimator_fidelity(
    trace: Trace,
    geometry: CacheGeometry,
    samples: int = 40,
    seed: int = 0,
    n: int = PAPER_HASHED_BITS,
) -> EstimatorFidelity:
    """Sample random permutation functions; compare estimate vs exact."""
    m = geometry.index_bits
    profile = profile_trace(trace, geometry, n)
    estimator = MissEstimator(profile)
    blocks = trace.block_addresses(geometry.block_size)
    rng = np.random.default_rng(seed)
    family = PermutationFamily(n, m)
    sampled: list = []
    estimated: list[int] = []
    seen = set()
    while len(sampled) < samples:
        fn = family.random_member(rng)
        key = fn.canonical_key()
        if key in seen:
            continue
        seen.add(key)
        sampled.append(fn)
        estimated.append(estimator.cost(fn.columns))
    # Exact-verify the whole sampled front in one batched engine replay.
    # Scored direct-mapped regardless of geometry.associativity: the
    # Eq. 4 estimate models direct-mapped conflicts, so that is the
    # reference whose ranking fidelity is being measured.
    dm_geometry = CacheGeometry((1 << m) * 4, block_size=4, associativity=1)
    exact = [
        result.misses for result in engine.evaluate_many(blocks, dm_geometry, sampled)
    ]
    if len(set(estimated)) <= 1 or len(set(exact)) <= 1:
        rho = 1.0 if len(set(exact)) <= 1 else 0.0
    else:
        rho = float(stats.spearmanr(estimated, exact).statistic)
    return EstimatorFidelity(
        sampled_functions=samples,
        spearman_rho=rho,
        estimated=estimated,
        exact=exact,
    )


@dataclass(frozen=True)
class CapacityFilterAblation:
    """Exact misses of functions optimized with vs without the filter."""

    baseline_misses: int
    with_filter_misses: int
    without_filter_misses: int

    @property
    def filter_helps(self) -> bool:
        return self.with_filter_misses <= self.without_filter_misses


def capacity_filter_ablation(
    trace: Trace,
    geometry: CacheGeometry,
    family: str = "2-in",
    n: int = PAPER_HASHED_BITS,
) -> CapacityFilterAblation:
    """Re-run the optimization with the capacity filter disabled.

    Disabling means profiling with effectively infinite capacity, so
    capacity misses contribute conflict vectors they cannot cash in.
    """
    m = geometry.index_bits
    blocks = trace.block_addresses(geometry.block_size)
    fam = family_for_name(family, n, m)

    filtered = profile_blocks(blocks, geometry.num_blocks, n)
    unfiltered = profile_blocks(blocks, len(blocks) + 1, n)

    with_filter = hill_climb(filtered, fam).function
    without_filter = hill_climb(unfiltered, fam).function

    return CapacityFilterAblation(
        baseline_misses=baseline_stats(trace, geometry).misses,
        with_filter_misses=evaluate_hash_function(trace, geometry, with_filter).misses,
        without_filter_misses=evaluate_hash_function(
            trace, geometry, without_filter
        ).misses,
    )


@dataclass(frozen=True)
class RestartsAblation:
    single_start_estimate: int
    restarts_estimate: int
    restarts: int

    @property
    def improvement_percent(self) -> float:
        if self.single_start_estimate == 0:
            return 0.0
        return 100.0 * (
            self.single_start_estimate - self.restarts_estimate
        ) / self.single_start_estimate


def restarts_ablation(
    trace: Trace,
    geometry: CacheGeometry,
    family: str = "2-in",
    restarts: int = 8,
    n: int = PAPER_HASHED_BITS,
    seed: int = 0,
    strategy="steepest",
) -> RestartsAblation:
    """Single-start hill climbing vs multi-start (our extension).

    The multi-start front advances in lockstep (one shared estimator
    gather per round); ``strategy`` swaps the per-start algorithm.
    """
    m = geometry.index_bits
    fam = family_for_name(family, n, m)
    profile = profile_trace(trace, geometry, n)
    single = hill_climb(profile, fam, strategy=strategy)
    multi = hill_climb_restarts(
        profile, fam, restarts=restarts, seed=seed, strategy=strategy
    )
    return RestartsAblation(
        single_start_estimate=single.estimated_misses,
        restarts_estimate=multi.estimated_misses,
        restarts=restarts,
    )


@dataclass(frozen=True)
class StrategyOutcome:
    """One strategy's search quality and cost on a fixed profile.

    ``certified`` / ``optimality_gap`` carry the exact-search provenance
    of :mod:`repro.search.branch_bound` (``None`` gap for heuristics,
    which prove nothing about their distance to the optimum).
    """

    strategy: str
    estimated_misses: int
    exact_misses: int
    steps: int
    evaluations: int
    seconds: float
    certified: bool = False
    optimality_gap: int | None = None


def strategy_comparison(
    trace: Trace,
    geometry: CacheGeometry,
    family: str = "2-in",
    strategies: tuple = (
        "steepest", "first-improvement", "beam:4", "anneal",
        "portfolio", "branch-bound",
    ),
    n: int = PAPER_HASHED_BITS,
) -> list[StrategyOutcome]:
    """Run every strategy on one profile; report estimate and exact misses.

    The paper evaluates steepest descent only; this driver measures
    what the strategy zoo changes — both in search quality (estimated
    and exactly simulated misses of the constructed function) and in
    search cost (steps, estimator evaluations, wall clock).  The
    default roster includes the portfolio race and branch-and-bound, so
    the table shows heuristic costs against a certified optimum (or its
    proven gap) where the exact search closes.
    """
    m = geometry.index_bits
    fam = family_for_name(family, n, m)
    profile = profile_trace(trace, geometry, n)
    estimator = MissEstimator(profile)
    outcomes = []
    for spec in strategies:
        strategy = strategy_for_name(spec)
        result = hill_climb(profile, fam, estimator=estimator, strategy=strategy)
        exact = evaluate_hash_function(trace, geometry, result.function)
        outcomes.append(
            StrategyOutcome(
                strategy=strategy.name,
                estimated_misses=result.estimated_misses,
                exact_misses=exact.misses,
                steps=result.steps,
                evaluations=result.evaluations,
                seconds=result.seconds,
                certified=result.certified,
                optimality_gap=result.optimality_gap,
            )
        )
    return outcomes


@dataclass(frozen=True)
class OptimalityGap:
    """Hill-climb local optimum vs the exhaustive global optimum.

    Quantifies the paper's Sec. 6.1 'room for improvement' on a hashed
    window small enough for :func:`repro.search.optimal_xor_function`.
    """

    n: int
    m: int
    start_estimate: int
    hill_climb_estimate: int
    optimal_estimate: int
    spaces_evaluated: int

    @property
    def gap_percent(self) -> float:
        """Extra conflict weight the local optimum leaves on the table,
        as a percentage of what the global optimum removes."""
        removable = self.start_estimate - self.optimal_estimate
        if removable <= 0:
            return 0.0
        return 100.0 * (self.hill_climb_estimate - self.optimal_estimate) / removable

    @property
    def hill_climb_is_optimal(self) -> bool:
        return self.hill_climb_estimate == self.optimal_estimate


def optimality_gap(
    blocks,
    capacity_blocks: int,
    n: int = 8,
    m: int = 4,
) -> OptimalityGap:
    """Measure the hill climber against the global optimum.

    The trace is profiled with a reduced hashed window (default n=8) so
    that every null space can be enumerated.
    """
    from repro.search.optimal_xor import optimal_xor_function

    profile = profile_blocks(np.asarray(blocks, dtype=np.uint64), capacity_blocks, n)
    family = family_for_name("general", n, m)
    climbed = hill_climb(profile, family)
    optimal = optimal_xor_function(profile, m)
    return OptimalityGap(
        n=n,
        m=m,
        start_estimate=climbed.start_misses,
        hill_climb_estimate=climbed.estimated_misses,
        optimal_estimate=optimal.estimated_misses,
        spaces_evaluated=optimal.spaces_evaluated,
    )


@dataclass(frozen=True)
class SearchTiming:
    family: str
    cache_bytes: int
    seconds: float
    steps: int
    evaluations: int


def search_timing(
    trace: Trace,
    cache_sizes: tuple[int, ...] = (1024, 4096, 16384),
    families: tuple[str, ...] = ("1-in", "2-in", "4-in", "16-in", "general"),
    n: int = PAPER_HASHED_BITS,
) -> list[SearchTiming]:
    """Wall-clock time of hash construction (paper Sec. 3.2: 0.5-10 s)."""
    timings = []
    for size in cache_sizes:
        geometry = CacheGeometry.direct_mapped(size)
        profile = profile_trace(trace, geometry, n)
        for family in families:
            fam = family_for_name(family, n, geometry.index_bits)
            t0 = time.perf_counter()
            result = hill_climb(profile, fam)
            timings.append(
                SearchTiming(
                    family=fam.name,
                    cache_bytes=size,
                    seconds=time.perf_counter() - t0,
                    steps=result.steps,
                    evaluations=result.evaluations,
                )
            )
    return timings
