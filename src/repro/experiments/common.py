"""Shared helpers for the experiment drivers."""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.cache.geometry import CacheGeometry
from repro.core.evaluate import evaluate_hash_functions
from repro.gf2.hashfn import XorHashFunction
from repro.pipeline.runtime import use_context
from repro.trace.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.context import PipelineContext

__all__ = ["format_table", "mean", "exact_miss_counts"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    float_format: str = "{:.1f}",
) -> str:
    """Plain-text table in the style of the paper's tables."""
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def exact_miss_counts(
    trace: Trace,
    geometry: CacheGeometry,
    functions: Sequence[XorHashFunction],
    context: "PipelineContext | None" = None,
) -> list[int]:
    """Exact miss counts for a whole candidate front in one replay.

    Drivers that score many functions on the same trace (e.g. the
    polynomial sweep) route through the engine's batched evaluator
    instead of simulating one candidate at a time.  Pass ``context``
    (or run under an active pipeline session) to read previously
    verified candidates from the artifact cache and simulate only the
    rest.
    """
    if context is not None:
        with use_context(context):
            return exact_miss_counts(trace, geometry, functions)
    return [
        stats.misses
        for stats in evaluate_hash_functions(trace, geometry, list(functions))
    ]
