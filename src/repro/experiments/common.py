"""Shared helpers for the experiment drivers."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "mean"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    float_format: str = "{:.1f}",
) -> str:
    """Plain-text table in the style of the paper's tables."""
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0
