"""Extension experiment: fixed polynomial hashing (Rau) vs
application-specific XOR-indexing.

The pre-history of the paper (refs [5, 9, 12]) uses one *fixed* hash
function for every program — typically reduction modulo an irreducible
polynomial.  The paper's thesis is that tuning the function to the
application beats any fixed choice.  This driver measures that claim:

* ``fixed``   — one irreducible polynomial hard-wired for all programs
  (the first of degree m, as a hardware designer would pick once);
* ``best-poly`` — the best irreducible polynomial *per program* (an
  oracle over the polynomial family, stronger than any fixed choice);
* ``app-specific`` — the paper's profiled 2-input permutation function.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry, PAPER_HASHED_BITS
from repro.core.evaluate import baseline_stats
from repro.core.optimizer import optimize_for_trace
from repro.experiments.common import exact_miss_counts, format_table, mean
from repro.gf2.polynomial import irreducible_polynomials, polynomial_hash_function
from repro.workloads.registry import get_workload, workload_names

__all__ = [
    "PolynomialBaselineRow",
    "run_polynomial_baseline",
    "format_polynomial_baseline",
]


@dataclass(frozen=True)
class PolynomialBaselineRow:
    benchmark: str
    base_misses: int
    fixed_poly_removed: float
    best_poly_removed: float
    app_specific_removed: float


def run_polynomial_baseline(
    scale: str = "small",
    cache_bytes: int = 4096,
    benchmarks: tuple[str, ...] | None = None,
    max_polynomials: int = 16,
    seed: int = 0,
) -> list[PolynomialBaselineRow]:
    names = benchmarks if benchmarks is not None else tuple(workload_names("mibench"))
    geometry = CacheGeometry.direct_mapped(cache_bytes)
    n = PAPER_HASHED_BITS
    m = geometry.index_bits
    polys = irreducible_polynomials(m)[:max_polynomials]
    functions = [polynomial_hash_function(n, p) for p in polys]

    rows = []
    for name in names:
        trace = get_workload("mibench", name, scale, seed).data
        base = baseline_stats(trace, geometry)
        # One batched engine replay scores the whole polynomial front.
        poly_misses = exact_miss_counts(trace, geometry, functions)
        fixed = poly_misses[0]
        best = min(poly_misses)
        app = optimize_for_trace(trace, geometry, family="2-in")

        def removed(misses: int) -> float:
            return 100.0 * (base.misses - misses) / base.misses if base.misses else 0.0

        rows.append(
            PolynomialBaselineRow(
                benchmark=name,
                base_misses=base.misses,
                fixed_poly_removed=removed(fixed),
                best_poly_removed=removed(best),
                app_specific_removed=app.removed_percent,
            )
        )
    return rows


def format_polynomial_baseline(rows: list[PolynomialBaselineRow]) -> str:
    table = [
        [r.benchmark, r.fixed_poly_removed, r.best_poly_removed, r.app_specific_removed]
        for r in rows
    ]
    table.append(
        [
            "average",
            mean(r.fixed_poly_removed for r in rows),
            mean(r.best_poly_removed for r in rows),
            mean(r.app_specific_removed for r in rows),
        ]
    )
    return format_table(
        ["benchmark", "fixed poly %", "best poly %", "app-specific %"],
        table,
        title="Extension: fixed polynomial hashing (Rau) vs application-specific "
        "XOR (% misses removed, 4KB data cache)",
    )
