"""Paper Sec. 6, first experiment: general XOR vs permutation-based.

The paper reports average data-cache miss reductions of 34.6/44.0/26.9%
(general) vs 32.3/43.9/26.7% (permutation-based) at 1/4/16 KB and
concludes that restricting the design space to permutation-based
functions costs almost nothing — the justification for the cheap
hardware of Sec. 5.  This driver reproduces that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry, PAPER_HASHED_BITS
from repro.core.optimizer import optimize_for_trace
from repro.experiments.common import format_table, mean
from repro.profiling.conflict_profile import profile_trace
from repro.search.families import GeneralXorFamily, PermutationFamily
from repro.workloads.registry import get_workload, workload_names

__all__ = ["GeneralVsPermResult", "run_general_vs_perm", "format_general_vs_perm",
           "PAPER_AVERAGES"]

#: cache KB -> (general %, permutation %) from Sec. 6.
PAPER_AVERAGES = {1: (34.6, 32.3), 4: (44.0, 43.9), 16: (26.9, 26.7)}


@dataclass
class GeneralVsPermResult:
    cache_bytes: int
    general_removed: dict[str, float]
    permutation_removed: dict[str, float]

    @property
    def general_average(self) -> float:
        return mean(self.general_removed.values())

    @property
    def permutation_average(self) -> float:
        return mean(self.permutation_removed.values())

    @property
    def gap(self) -> float:
        """How much restricting to permutation functions costs (points)."""
        return self.general_average - self.permutation_average


def run_general_vs_perm(
    scale: str = "small",
    cache_sizes: tuple[int, ...] = (1024, 4096, 16384),
    benchmarks: tuple[str, ...] | None = None,
    seed: int = 0,
) -> list[GeneralVsPermResult]:
    names = benchmarks if benchmarks is not None else tuple(workload_names("mibench"))
    n = PAPER_HASHED_BITS
    results = []
    for size in cache_sizes:
        geometry = CacheGeometry.direct_mapped(size)
        m = geometry.index_bits
        general: dict[str, float] = {}
        permutation: dict[str, float] = {}
        for name in names:
            trace = get_workload("mibench", name, scale, seed).data
            profile = profile_trace(trace, geometry, n)
            general[name] = optimize_for_trace(
                trace, geometry, family=GeneralXorFamily(n, m), profile=profile
            ).removed_percent
            permutation[name] = optimize_for_trace(
                trace, geometry, family=PermutationFamily(n, m), profile=profile
            ).removed_percent
        results.append(
            GeneralVsPermResult(
                cache_bytes=size,
                general_removed=general,
                permutation_removed=permutation,
            )
        )
    return results


def format_general_vs_perm(results: list[GeneralVsPermResult]) -> str:
    rows = []
    for r in results:
        paper = PAPER_AVERAGES.get(r.cache_bytes // 1024)
        rows.append(
            [
                f"{r.cache_bytes // 1024}KB",
                r.general_average,
                r.permutation_average,
                r.gap,
                f"{paper[0]}/{paper[1]}" if paper else "-",
            ]
        )
    return format_table(
        ["cache", "general %", "permutation %", "gap", "paper (gen/perm)"],
        rows,
        title="Sec. 6 experiment 1: general vs permutation-based XOR (data caches)",
    )
