"""Paper Table 2: baseline misses/K-uop and % of misses removed by
optimized permutation-based XOR-functions.

For each MiBench/MediaBench benchmark, each cache size (1/4/16 KB) and
each fan-in budget (2-in / 4-in / 16-in), the driver profiles the
trace, hill-climbs the family, verifies by exact simulation and reports
the paper's two quantities: base misses/K-uop and % misses removed.
Data caches and instruction caches are separate runs, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.optimizer import OptimizationResult
from repro.experiments.common import format_table, mean
from repro.pipeline.campaign import CampaignTask, run_campaign
from repro.workloads.registry import workload_names

__all__ = ["Table2Row", "Table2Result", "run_table2", "format_table2", "PAPER_TABLE2_AVERAGES"]

#: Paper Table 2 'average' rows: (kind, cache KB) -> (base, {family: %removed}).
PAPER_TABLE2_AVERAGES = {
    ("data", 1): (18.9, {"2-in": 30.1, "4-in": 33.9, "16-in": 34.6}),
    ("data", 4): (10.4, {"2-in": 42.3, "4-in": 43.6, "16-in": 44.0}),
    ("data", 16): (6.0, {"2-in": 25.9, "4-in": 27.0, "16-in": 26.9}),
    ("instruction", 1): (143.6, {"2-in": 20.1, "4-in": 26.2, "16-in": 27.4}),
    ("instruction", 4): (27.7, {"2-in": 47.8, "4-in": 60.9, "16-in": 61.1}),
    ("instruction", 16): (5.6, {"2-in": 57.5, "4-in": 59.6, "16-in": 59.6}),
}

DEFAULT_FAMILIES = ("2-in", "4-in", "16-in")


@dataclass
class Table2Row:
    """One benchmark at one cache size."""

    benchmark: str
    cache_bytes: int
    base_misses_per_kuop: float
    removed_percent: dict[str, float] = field(default_factory=dict)
    details: dict[str, OptimizationResult] = field(default_factory=dict)


@dataclass
class Table2Result:
    """All rows of one Table 2 half (data or instruction caches)."""

    kind: str
    scale: str
    rows: list[Table2Row]

    def rows_for(self, cache_bytes: int) -> list[Table2Row]:
        return [r for r in self.rows if r.cache_bytes == cache_bytes]

    def average_removed(self, cache_bytes: int, family: str) -> float:
        return mean(
            r.removed_percent[family] for r in self.rows_for(cache_bytes)
        )

    def average_base(self, cache_bytes: int) -> float:
        return mean(r.base_misses_per_kuop for r in self.rows_for(cache_bytes))


def run_table2(
    kind: str = "data",
    scale: str = "small",
    cache_sizes: tuple[int, ...] = (1024, 4096, 16384),
    families: tuple[str, ...] = DEFAULT_FAMILIES,
    benchmarks: tuple[str, ...] | None = None,
    seed: int = 0,
    workers: int | None = 1,
) -> Table2Result:
    """Regenerate one half of Table 2.

    The grid runs as a pipeline campaign: the conflict profile is
    computed once per (benchmark, cache size) and shared by all
    families through the session memo / artifact cache, and with
    ``workers > 1`` (or ``None`` for one per core) rows are simulated
    in parallel across a process pool.
    """
    names = benchmarks if benchmarks is not None else tuple(workload_names("mibench"))
    tasks = [
        CampaignTask(
            suite="mibench",
            benchmark=name,
            kind=kind,
            scale=scale,
            cache_bytes=size,
            family=family,
            workload_seed=seed,
        )
        for name in names
        for size in cache_sizes
        for family in families
    ]
    campaign = run_campaign(tasks, workers=workers, keep_details=True)
    rows: dict[tuple[str, int], Table2Row] = {}
    for campaign_row in campaign.rows:
        task = campaign_row.task
        row = rows.get((task.benchmark, task.cache_bytes))
        if row is None:
            row = Table2Row(
                benchmark=task.benchmark,
                cache_bytes=task.cache_bytes,
                base_misses_per_kuop=0.0,
            )
            rows[(task.benchmark, task.cache_bytes)] = row
        row.removed_percent[task.family] = campaign_row.removed_percent
        row.details[task.family] = campaign_row.result
        row.base_misses_per_kuop = campaign_row.base_misses_per_kuop
    return Table2Result(kind=kind, scale=scale, rows=list(rows.values()))


def format_table2(result: Table2Result) -> str:
    """Render like the paper: per cache size, base + % removed columns."""
    families = list(result.rows[0].removed_percent.keys()) if result.rows else []
    sizes = sorted({r.cache_bytes for r in result.rows})
    headers = ["benchmark"]
    for size in sizes:
        headers.append(f"{size // 1024}KB base")
        headers.extend(f"{size // 1024}KB {f}" for f in families)
    by_benchmark: dict[str, dict[int, Table2Row]] = {}
    for row in result.rows:
        by_benchmark.setdefault(row.benchmark, {})[row.cache_bytes] = row
    table_rows = []
    for benchmark, per_size in by_benchmark.items():
        cells: list = [benchmark]
        for size in sizes:
            row = per_size[size]
            cells.append(row.base_misses_per_kuop)
            cells.extend(row.removed_percent[f] for f in families)
        table_rows.append(cells)
    average: list = ["average"]
    for size in sizes:
        average.append(result.average_base(size))
        average.extend(result.average_removed(size, f) for f in families)
    table_rows.append(average)
    return format_table(
        headers,
        table_rows,
        title=(
            f"Table 2 ({result.kind} caches, scale={result.scale}): "
            "base misses/K-uop and % misses removed"
        ),
    )
