"""Paper Fig. 2: the reconfigurable selection networks.

Builds both networks of the figure (the optimized bit-selecting
selector and the permutation-based selector), verifies them
functionally against matrix semantics, and produces the ASCII
schematics plus the Sec. 5 wiring comparison (bit selection: ``n``
lines crossed by ``n``; permutation-based: ``n - m`` crossed by ``m``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import format_table
from repro.gf2.hashfn import XorHashFunction
from repro.hardware.network import build_network
from repro.hardware.schematic import render_network
from repro.hardware.wiring import WiringReport, wiring_report

__all__ = ["Figure2Result", "run_figure2", "format_figure2"]

_SCHEMES = ("bit-select", "optimized bit-select", "general XOR", "permutation-based")


@dataclass
class Figure2Result:
    n: int
    m: int
    schematics: dict[str, str]
    wiring: dict[str, WiringReport]
    verified_addresses: int


def run_figure2(n: int = 16, m: int = 8, verify_addresses: int = 4096, seed: int = 0) -> Figure2Result:
    """Build, configure, verify and render the Fig. 2 networks."""
    rng = np.random.default_rng(seed)
    perm_fn = XorHashFunction.random(n, m, rng, max_fan_in=2, permutation=True)
    bits = sorted(rng.choice(n, size=m, replace=False).tolist())
    select_fn = XorHashFunction.bit_select(n, bits)

    schematics: dict[str, str] = {}
    wiring: dict[str, WiringReport] = {}
    for scheme in _SCHEMES:
        network = build_network(scheme, n, m)
        if scheme == "permutation-based":
            network.configure_from(perm_fn)
            reference = perm_fn
        elif scheme == "general XOR":
            network.configure_from(perm_fn)
            reference = network.realized_function
        else:
            network.configure_from(select_fn)
            reference = None  # bit-select networks may permute index bits
        for addr in range(verify_addresses):
            if reference is not None:
                assert network.index_of(addr) == reference.apply(addr)
                assert network.tag_of(addr) == reference.tag_of(addr)
        schematics[scheme] = render_network(network)
        wiring[scheme] = wiring_report(network)
    return Figure2Result(
        n=n,
        m=m,
        schematics=schematics,
        wiring=wiring,
        verified_addresses=verify_addresses,
    )


def format_figure2(result: Figure2Result) -> str:
    rows = [
        [
            scheme,
            report.input_lines,
            report.output_lines,
            report.crossings,
            report.switch_count,
            report.config_bits,
        ]
        for scheme, report in result.wiring.items()
    ]
    table = format_table(
        ["scheme", "in lines", "out lines", "crossings", "switches", "config bits"],
        rows,
        title=f"Fig. 2 / Sec. 5: selector-network complexity (n={result.n}, m={result.m})",
    )
    parts = [table, ""]
    for scheme in ("optimized bit-select", "permutation-based"):
        parts.append(result.schematics[scheme])
        parts.append("")
    return "\n".join(parts)
