"""Experiment drivers: one module per paper table/figure plus ablations."""

from repro.experiments.ablations import (
    capacity_filter_ablation,
    estimator_fidelity,
    optimality_gap,
    restarts_ablation,
    search_timing,
    strategy_comparison,
)
from repro.experiments.counting import format_counting, run_counting
from repro.experiments.figure2 import format_figure2, run_figure2
from repro.experiments.general_vs_perm import (
    PAPER_AVERAGES,
    format_general_vs_perm,
    run_general_vs_perm,
)
from repro.experiments.table1 import PAPER_TABLE1, format_table1, run_table1
from repro.experiments.table2 import (
    PAPER_TABLE2_AVERAGES,
    format_table2,
    run_table2,
)
from repro.experiments.miss_classification import (
    format_miss_classification,
    run_miss_classification,
)
from repro.experiments.polynomial_baseline import (
    format_polynomial_baseline,
    run_polynomial_baseline,
)
from repro.experiments.skewed_comparison import (
    format_skewed_comparison,
    run_skewed_comparison,
)
from repro.experiments.table3 import PAPER_TABLE3, format_table3, run_table3

__all__ = [
    "run_table1",
    "format_table1",
    "PAPER_TABLE1",
    "run_table2",
    "format_table2",
    "PAPER_TABLE2_AVERAGES",
    "run_table3",
    "format_table3",
    "PAPER_TABLE3",
    "run_general_vs_perm",
    "format_general_vs_perm",
    "PAPER_AVERAGES",
    "run_counting",
    "format_counting",
    "run_figure2",
    "format_figure2",
    "estimator_fidelity",
    "capacity_filter_ablation",
    "restarts_ablation",
    "strategy_comparison",
    "search_timing",
    "optimality_gap",
    "run_skewed_comparison",
    "format_skewed_comparison",
    "run_polynomial_baseline",
    "format_polynomial_baseline",
    "run_miss_classification",
    "format_miss_classification",
]
