"""Extension experiment: optimized direct-mapped vs skewed-associative.

The paper's related work (Seznec & Bodin, ref. [2]) attacks conflicts
with a *fixed* pair of hash functions and two banks; the paper attacks
them with an *application-specific* function and one bank.  This driver
puts the two on the same workloads at equal capacity, plus 2-way
set-associative LRU as the conventional middle ground.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.geometry import CacheGeometry, PAPER_HASHED_BITS
from repro.cache.indexing import ModuloIndexing, XorIndexing
from repro.cache.set_assoc import simulate_set_associative
from repro.cache.skewed import simulate_skewed
from repro.core.evaluate import baseline_stats
from repro.core.optimizer import optimize_for_trace
from repro.experiments.common import format_table, mean
from repro.gf2.hashfn import XorHashFunction
from repro.workloads.registry import get_workload, workload_names

__all__ = ["SkewedComparisonRow", "run_skewed_comparison", "format_skewed_comparison"]


@dataclass(frozen=True)
class SkewedComparisonRow:
    benchmark: str
    base_misses: int
    optimized_dm_removed: float
    skewed_removed: float
    two_way_removed: float


def _skew_banks(n: int, m: int) -> list:
    """Seznec-style fixed inter-bank hash pair: modulo in bank 0, a
    fixed XOR permutation in bank 1."""
    sigma = [m + (c % (n - m)) for c in range(m)]
    return [
        ModuloIndexing(m),
        XorIndexing(XorHashFunction.from_sigma(n, m, sigma)),
    ]


def run_skewed_comparison(
    scale: str = "small",
    cache_bytes: int = 4096,
    benchmarks: tuple[str, ...] | None = None,
    seed: int = 0,
) -> list[SkewedComparisonRow]:
    names = benchmarks if benchmarks is not None else tuple(workload_names("mibench"))
    geometry = CacheGeometry.direct_mapped(cache_bytes)
    n = PAPER_HASHED_BITS
    rows = []
    for name in names:
        trace = get_workload("mibench", name, scale, seed).data
        blocks = trace.block_addresses(geometry.block_size)
        base = baseline_stats(trace, geometry)

        optimized = optimize_for_trace(trace, geometry, family="2-in")
        skewed = simulate_skewed(
            blocks, _skew_banks(n, geometry.index_bits - 1), seed=seed
        )
        two_way = simulate_set_associative(
            blocks,
            CacheGeometry(cache_bytes, geometry.block_size, associativity=2),
        )
        rows.append(
            SkewedComparisonRow(
                benchmark=name,
                base_misses=base.misses,
                optimized_dm_removed=optimized.removed_percent,
                skewed_removed=skewed.removed_fraction(base),
                two_way_removed=two_way.removed_fraction(base),
            )
        )
    return rows


def format_skewed_comparison(rows: list[SkewedComparisonRow]) -> str:
    table = [
        [r.benchmark, r.optimized_dm_removed, r.skewed_removed, r.two_way_removed]
        for r in rows
    ]
    table.append(
        [
            "average",
            mean(r.optimized_dm_removed for r in rows),
            mean(r.skewed_removed for r in rows),
            mean(r.two_way_removed for r in rows),
        ]
    )
    return format_table(
        ["benchmark", "opt-DM 2-in %", "skewed 2-way %", "LRU 2-way %"],
        table,
        title="Extension: application-specific DM vs skewed-associative vs 2-way LRU "
        "(% misses removed, equal capacity)",
    )
