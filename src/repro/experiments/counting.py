"""Paper Sec. 2 design-space counts (Eq. 3).

"There are 3.4e38 distinct matrices, hashing 16 address bits to 8 set
index bits but only 6.3e19 distinct null spaces."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import format_table
from repro.gf2.counting import num_distinct_null_spaces, num_full_rank_matrices

__all__ = ["CountingResult", "run_counting", "format_counting"]


@dataclass(frozen=True)
class CountingResult:
    n: int
    m: int
    full_rank_matrices: int
    distinct_null_spaces: int

    @property
    def redundancy_factor(self) -> float:
        """Matrices per distinct behaviour — the search-space shrinkage."""
        return self.full_rank_matrices / self.distinct_null_spaces


def run_counting(configs: tuple[tuple[int, int], ...] = ((16, 8), (16, 10), (16, 12))) -> list[CountingResult]:
    return [
        CountingResult(
            n=n,
            m=m,
            full_rank_matrices=num_full_rank_matrices(n, m),
            distinct_null_spaces=num_distinct_null_spaces(n, m),
        )
        for n, m in configs
    ]


def format_counting(results: list[CountingResult] | None = None) -> str:
    results = results if results is not None else run_counting()
    rows = [
        [
            f"{r.n}->{r.m}",
            f"{r.full_rank_matrices:.3e}",
            f"{r.distinct_null_spaces:.3e}",
            f"{r.redundancy_factor:.3e}",
        ]
        for r in results
    ]
    return format_table(
        ["hash", "full-rank matrices", "distinct null spaces", "redundancy"],
        rows,
        title="Sec. 2: design-space sizes (Eq. 3)",
    )
