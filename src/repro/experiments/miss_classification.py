"""Extension experiment: three-Cs decomposition of the baseline misses.

Relates Table 2's removal percentages to the classic
compulsory/capacity/conflict split.  Two regimes emerge:

* when the FA-LRU capacity component is zero, the conflict pool is a
  hard upper bound on removal (first touches always miss);
* when it is not, hashing can remove far *more* than the nominal
  conflict pool — LRU's capacity definition is replacement-bound, and
  a good placement turns FA-LRU's cyclic-sweep pathologies into hits
  (our lame row removes 84% against a 2% "conflict" share).  This is
  the paper's Sec. 6.1 observation that hashing may beat full
  associativity, surfacing in the classification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.classify import MissBreakdown, classify_misses
from repro.cache.geometry import CacheGeometry
from repro.core.optimizer import optimize_for_trace
from repro.experiments.common import format_table, mean
from repro.workloads.registry import get_workload, workload_names

__all__ = [
    "ClassificationRow",
    "run_miss_classification",
    "format_miss_classification",
]


@dataclass(frozen=True)
class ClassificationRow:
    benchmark: str
    cache_bytes: int
    breakdown: MissBreakdown
    removed_percent: float

    @property
    def conflict_percent(self) -> float:
        """Conflict share of all baseline misses (the removable pool)."""
        return 100.0 * self.breakdown.conflict_fraction

    @property
    def recovered_of_conflicts(self) -> float:
        """Removed misses as a share of the conflict pool."""
        if self.breakdown.conflict <= 0:
            return 0.0
        removed = self.removed_percent / 100.0 * self.breakdown.total
        return 100.0 * removed / self.breakdown.conflict


def run_miss_classification(
    scale: str = "small",
    cache_bytes: int = 4096,
    benchmarks: tuple[str, ...] | None = None,
    seed: int = 0,
) -> list[ClassificationRow]:
    names = benchmarks if benchmarks is not None else tuple(workload_names("mibench"))
    geometry = CacheGeometry.direct_mapped(cache_bytes)
    rows = []
    for name in names:
        trace = get_workload("mibench", name, scale, seed).data
        blocks = trace.block_addresses(geometry.block_size)
        breakdown = classify_misses(blocks, geometry)
        result = optimize_for_trace(trace, geometry, family="2-in")
        rows.append(
            ClassificationRow(
                benchmark=name,
                cache_bytes=cache_bytes,
                breakdown=breakdown,
                removed_percent=result.removed_percent,
            )
        )
    return rows


def format_miss_classification(rows: list[ClassificationRow]) -> str:
    table = [
        [
            r.benchmark,
            r.breakdown.total,
            r.breakdown.compulsory,
            r.breakdown.capacity,
            r.breakdown.conflict,
            r.conflict_percent,
            r.removed_percent,
        ]
        for r in rows
    ]
    table.append(
        [
            "average",
            "",
            "",
            "",
            "",
            mean(r.conflict_percent for r in rows),
            mean(r.removed_percent for r in rows),
        ]
    )
    size = rows[0].cache_bytes // 1024 if rows else 0
    return format_table(
        ["benchmark", "misses", "compulsory", "capacity", "conflict",
         "conflict %", "removed %"],
        table,
        title=f"Extension: three-Cs decomposition vs achieved removal "
        f"({size}KB data cache)",
    )
