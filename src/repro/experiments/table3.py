"""Paper Table 3: heuristic vs optimal bit selection vs full associativity.

For each PowerStone benchmark on the 4 KB direct-mapped data cache:

* ``opt``   — the optimal bit-selecting function (exhaustive search,
  exact simulation — Patel et al.'s result);
* ``1-in``  — bit selection found by the paper's heuristic;
* ``2/4/16-in`` — permutation-based XOR functions from the heuristic;
* ``FA``    — a fully-associative LRU cache of equal capacity.

All columns report % of baseline misses removed.  The paper's headline
observations, checked by the regression tests:

* the heuristic matches the optimum on most benchmarks;
* XOR functions beat optimal bit selection on average;
* FA-LRU is not an upper bound (hashing can beat it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

from repro.cache.fully_assoc import simulate_fully_associative
from repro.cache.geometry import CacheGeometry, PAPER_HASHED_BITS
from repro.core.evaluate import baseline_stats, evaluate_hash_function
from repro.core.optimizer import optimize_for_trace
from repro.experiments.common import format_table, mean
from repro.pipeline.campaign import map_with_context
from repro.pipeline.runtime import current_context
from repro.profiling.conflict_profile import profile_trace
from repro.search.exhaustive import optimal_bit_select
from repro.workloads.registry import get_workload, workload_names

__all__ = ["Table3Row", "run_table3", "format_table3", "PAPER_TABLE3"]

#: Published Table 3 (% misses removed), for shape comparison.
PAPER_TABLE3 = {
    "adpcm": (0.0, 0.0, 0.2, 0.2, 0.2, 0.2),
    "bcnt": (5.2, 0.0, 0.0, 0.0, 0.0, 0.0),
    "blit": (14.7, 8.6, 14.3, 14.3, 14.3, 0.0),
    "compress": (3.2, 3.0, 2.4, 2.8, 2.9, 2.7),
    "crc": (0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
    "des": (0.0, 0.0, 8.8, 8.6, 10.1, 17.8),
    "engine": (36.2, 36.2, 36.2, 36.2, 36.2, 36.2),
    "fir": (7.7, 7.7, 7.7, 7.7, 7.7, 7.7),
    "g3fax": (0.0, 0.0, 37.1, 41.1, 41.1, 57.0),
    "jpeg": (2.3, 2.3, 1.4, 1.6, 1.6, 7.2),
    "pocsag": (3.0, 3.0, 3.0, 3.0, 3.0, 3.0),
    "qurt": (0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
    "ucbqsort": (46.6, 46.6, 46.6, 46.6, 46.6, 46.6),
    "v42": (0.0, 0.0, 5.6, 6.2, 6.0, 18.0),
}

COLUMNS = ("opt", "1-in", "2-in", "4-in", "16-in", "FA")


@dataclass
class Table3Row:
    benchmark: str
    base_misses: int
    removed_percent: dict[str, float] = field(default_factory=dict)


def _table3_row(
    name: str,
    scale: str,
    cache_bytes: int,
    opt_mode: str,
    seed: int,
    max_refs: int | None,
) -> Table3Row:
    """One Table 3 row; top level so campaign workers can pickle it."""
    geometry = CacheGeometry.direct_mapped(cache_bytes)
    n = PAPER_HASHED_BITS
    trace = get_workload("powerstone", name, scale, seed).data
    if max_refs is not None:
        trace = trace.head(max_refs)
    blocks = trace.block_addresses(geometry.block_size)
    base = baseline_stats(trace, geometry)
    context = current_context()
    profile = (
        context.profile(trace, geometry, n)
        if context is not None
        else profile_trace(trace, geometry, n)
    )
    row = Table3Row(benchmark=name, base_misses=base.misses)

    exhaustive = optimal_bit_select(
        n,
        geometry.index_bits,
        blocks=blocks if opt_mode == "exact" else None,
        profile=profile if opt_mode == "estimate" else None,
        mode=opt_mode,
    )
    opt_stats = evaluate_hash_function(trace, geometry, exhaustive.function)
    row.removed_percent["opt"] = opt_stats.removed_fraction(base)

    for family in ("1-in", "2-in", "4-in", "16-in"):
        result = optimize_for_trace(
            trace, geometry, family=family, profile=profile
        )
        row.removed_percent[family] = result.removed_percent

    fa = simulate_fully_associative(blocks, geometry.num_blocks)
    row.removed_percent["FA"] = fa.removed_fraction(base)
    return row


def run_table3(
    scale: str = "small",
    cache_bytes: int = 4096,
    benchmarks: tuple[str, ...] | None = None,
    opt_mode: str = "exact",
    seed: int = 0,
    max_refs: int | None = None,
    workers: int | None = 1,
) -> list[Table3Row]:
    """Regenerate Table 3.

    ``opt_mode="exact"`` enumerates all C(16, m) bit selections with
    exact simulation (slow but the true optimum, as in the paper —
    feasible because PowerStone traces are short);
    ``opt_mode="estimate"`` scores the enumeration with Eq. 4 instead.
    ``max_refs`` truncates long traces before the exhaustive pass — the
    same cost control that limited the paper to the short PowerStone
    suite.  Rows run as pipeline tasks: profiles, baselines and exact
    verifications go through the active artifact cache, and
    ``workers > 1`` (or ``None`` for one per core) fans benchmarks out
    across a process pool.
    """
    names = benchmarks if benchmarks is not None else tuple(workload_names("powerstone"))
    row_fn = partial(
        _table3_row,
        scale=scale,
        cache_bytes=cache_bytes,
        opt_mode=opt_mode,
        seed=seed,
        max_refs=max_refs,
    )
    return map_with_context(row_fn, names, workers=workers)


def average_row(rows: list[Table3Row]) -> dict[str, float]:
    return {
        column: mean(r.removed_percent[column] for r in rows) for column in COLUMNS
    }


def format_table3(rows: list[Table3Row]) -> str:
    table = [
        [r.benchmark] + [r.removed_percent[c] for c in COLUMNS] for r in rows
    ]
    avg = average_row(rows)
    table.append(["average"] + [avg[c] for c in COLUMNS])
    return format_table(
        ["bench"] + list(COLUMNS),
        table,
        title="Table 3: % misses removed (PowerStone, 4KB data cache)",
    )
