"""Wire-level complexity of the selector networks (paper Sec. 5).

Beyond switch counts, the paper argues the dominant physical cost is
the selector *crossbar*: input lines crossing output lines create
high-capacitance nodes.  Bit-selecting functions need ``n`` input lines
crossed by ``n`` outputs, while permutation-based functions need only
``n - m`` input lines crossed by ``m`` outputs.  This module exposes
those grid dimensions plus a simple capacitance/energy proxy so the
ablation benches can rank the schemes the way Sec. 5 does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.network import (
    GeneralXorNetwork,
    OptimizedBitSelectNetwork,
    PermutationNetwork,
    PlainBitSelectNetwork,
    ReconfigurableNetwork,
)

__all__ = ["WiringReport", "wiring_report"]


@dataclass(frozen=True)
class WiringReport:
    """Crossbar dimensions and derived proxies for one network."""

    scheme: str
    input_lines: int
    output_lines: int
    switch_count: int
    config_bits: int
    #: XOR gates on the index path (2 pass gates + 1 inverter each).
    xor_gates: int

    @property
    def crossings(self) -> int:
        """Input x output line crossings — the capacitance hot spots."""
        return self.input_lines * self.output_lines

    @property
    def capacitance_proxy(self) -> float:
        """Relative switching capacitance: each crossing loads both
        lines; each switch adds a pass-gate junction."""
        return float(self.crossings + self.switch_count)

    @property
    def xor_transistors(self) -> int:
        """Pass-transistor XOR cost: 2 pass gates + 1 inverter (2T) each."""
        return self.xor_gates * 4


def wiring_report(network: ReconfigurableNetwork) -> WiringReport:
    """Crossbar dimensions for one of the four Sec. 5 schemes."""
    if not isinstance(network, ReconfigurableNetwork):
        raise TypeError(f"expected a ReconfigurableNetwork, got {type(network).__name__}")
    n, m = network.n, network.m
    if isinstance(network, PermutationNetwork):
        # Only the n-m high bits enter the crossbar; m selector outputs.
        return WiringReport(
            scheme=network.scheme_name,
            input_lines=n - m,
            output_lines=m,
            switch_count=network.switch_count,
            config_bits=network.config_bit_count,
            xor_gates=m,
        )
    if isinstance(network, GeneralXorNetwork):
        # All n bits enter; outputs are 2m gate inputs plus n-m tag bits.
        return WiringReport(
            scheme=network.scheme_name,
            input_lines=n,
            output_lines=2 * m + (n - m),
            switch_count=network.switch_count,
            config_bits=network.config_bit_count,
            xor_gates=m,
        )
    if isinstance(network, (PlainBitSelectNetwork, OptimizedBitSelectNetwork)):
        return WiringReport(
            scheme=network.scheme_name,
            input_lines=n,
            output_lines=n,
            switch_count=network.switch_count,
            config_bits=network.config_bit_count,
            xor_gates=0,
        )
    raise TypeError(f"unknown network type {type(network).__name__}")
