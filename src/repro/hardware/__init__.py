"""Hardware models for reconfigurable XOR-indexing (paper Sec. 5)."""

from repro.hardware.energy import EnergyModel, EnergyReport, indexing_energy
from repro.hardware.network import (
    GeneralXorNetwork,
    OptimizedBitSelectNetwork,
    PermutationNetwork,
    PlainBitSelectNetwork,
    ReconfigurableNetwork,
    Selector,
    build_network,
)
from repro.hardware.schematic import render_network, render_selector_row
from repro.hardware.switches import (
    bit_select_switches,
    general_xor_switches,
    optimized_bit_select_switches,
    permutation_switches,
    switch_counts,
)
from repro.hardware.wiring import WiringReport, wiring_report

__all__ = [
    "Selector",
    "ReconfigurableNetwork",
    "PlainBitSelectNetwork",
    "OptimizedBitSelectNetwork",
    "GeneralXorNetwork",
    "PermutationNetwork",
    "build_network",
    "bit_select_switches",
    "optimized_bit_select_switches",
    "general_xor_switches",
    "permutation_switches",
    "switch_counts",
    "WiringReport",
    "wiring_report",
    "render_network",
    "render_selector_row",
    "EnergyModel",
    "EnergyReport",
    "indexing_energy",
]
