"""First-order energy model for the indexing schemes.

The paper's motivation is the power/performance trade-off of embedded
systems: conflict misses burn energy in off-chip accesses, and the
reconfigurable selector itself adds switching capacitance.  This model
combines both at the granularity Sec. 5 argues about:

* per-access selector energy proportional to the wiring capacitance
  proxy (crossing + switch count) plus the XOR pass-transistor cost;
* per-miss refill energy dominated by the off-chip transfer.

Only *relative* numbers are meaningful; defaults are in arbitrary
femto-joule-like units chosen so one off-chip miss costs about three
orders of magnitude more than one selector evaluation — the usual
embedded-SRAM-vs-bus ratio, and the reason removing 30-60% of misses
dwarfs the selector overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.stats import CacheStats
from repro.hardware.network import ReconfigurableNetwork
from repro.hardware.wiring import wiring_report

__all__ = ["EnergyModel", "EnergyReport", "indexing_energy"]


@dataclass(frozen=True)
class EnergyModel:
    """Tunable cost coefficients (arbitrary but consistent units)."""

    capacitance_unit: float = 0.02   # per crossing/switch, per access
    xor_transistor_unit: float = 0.05  # per XOR transistor, per access
    cache_access: float = 5.0        # SRAM array read
    miss_refill: float = 4000.0      # off-chip refill


@dataclass(frozen=True)
class EnergyReport:
    """Energy split for one (trace, network) combination."""

    scheme: str
    accesses: int
    misses: int
    selector_energy: float
    array_energy: float
    miss_energy: float

    @property
    def total(self) -> float:
        return self.selector_energy + self.array_energy + self.miss_energy

    @property
    def selector_overhead_fraction(self) -> float:
        return self.selector_energy / self.total if self.total else 0.0


def indexing_energy(
    stats: CacheStats,
    network: ReconfigurableNetwork,
    model: EnergyModel | None = None,
) -> EnergyReport:
    """Combine miss statistics with a selector network's physical cost."""
    model = model or EnergyModel()
    report = wiring_report(network)
    per_access = (
        model.capacitance_unit * report.capacitance_proxy
        + model.xor_transistor_unit * report.xor_transistors
    )
    return EnergyReport(
        scheme=network.scheme_name,
        accesses=stats.accesses,
        misses=stats.misses,
        selector_energy=per_access * stats.accesses,
        array_energy=model.cache_access * stats.accesses,
        miss_energy=model.miss_refill * stats.misses,
    )
