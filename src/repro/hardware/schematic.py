"""ASCII schematics of the reconfigurable selection networks (Fig. 2).

These renderings show, per output, which address bits its selector can
reach — the programmable region of Fig. 2 — and mark the configured
switch when the network has been programmed.  They exist for
documentation and the Fig. 2 bench; correctness lives in
:mod:`repro.hardware.network`.
"""

from __future__ import annotations

from repro.hardware.network import ReconfigurableNetwork, Selector

__all__ = ["render_network", "render_selector_row"]


def render_selector_row(selector: Selector, n: int) -> str:
    """One output row: '.' unreachable, 'o' selectable, 'X' selected,
    'C' = selectable constant (shown in an extra right-hand column)."""
    cells = ["."] * n
    const_cell = " "
    selected = selector.selected_option
    for option in selector.options:
        kind, value = option
        if kind == "bit":
            cells[value] = "o"
        else:
            const_cell = "c"
    if selected is not None:
        kind, value = selected
        if kind == "bit":
            cells[value] = "X"
        else:
            const_cell = "C"
    return "".join(cells) + " |" + const_cell + f"| {selector.name}"


def render_network(network: ReconfigurableNetwork) -> str:
    """Full schematic: header row of address bits, one row per output."""
    n = network.n
    header_tens = "".join(str((r // 10) % 10) if r >= 10 else " " for r in range(n))
    header_ones = "".join(str(r % 10) for r in range(n))
    lines = [
        f"{network.scheme_name} network, n={n}, m={network.m} "
        f"({network.switch_count} switches)",
        header_tens + "     address bit",
        header_ones,
    ]
    groups = [
        ("index selectors", network.index_selectors),
        ("second XOR inputs", network.second_input_selectors),
        ("tag selectors", network.tag_selectors),
    ]
    for title, selectors in groups:
        if not selectors:
            continue
        lines.append(f"-- {title} --")
        for selector in selectors:
            lines.append(render_selector_row(selector, n))
    if not network.second_input_selectors and not network.tag_selectors \
            and not network.index_selectors:
        lines.append("(fully hard-wired)")
    return "\n".join(lines)
