"""Functional switch-level models of the reconfigurable networks (Sec. 5).

Unlike :mod:`repro.hardware.switches` (which only counts), these classes
*construct* every selector with its selectable inputs, hold the
configuration state (one memory cell per switch), and evaluate
addresses bit-exactly.  Tests verify that a configured network computes
exactly the same (set index, tag) as the matrix semantics of the hash
function it was configured from, and that constructed switch counts
match the closed forms of Table 1.

Conventions: an "option" is either an address-bit input ``("bit", r)``
or the constant zero ``("const", 0)``.  Exactly one option per selector
is on.
"""

from __future__ import annotations

from repro.gf2.hashfn import XorHashFunction
from repro.hardware.switches import (
    bit_select_switches,
    general_xor_switches,
    optimized_bit_select_switches,
    permutation_switches,
)

__all__ = [
    "Selector",
    "ReconfigurableNetwork",
    "PlainBitSelectNetwork",
    "OptimizedBitSelectNetwork",
    "GeneralXorNetwork",
    "PermutationNetwork",
    "build_network",
]

Option = tuple[str, int]
CONST_ZERO: Option = ("const", 0)


class Selector:
    """A 1-out-of-k pass-gate selector with one memory cell per switch."""

    __slots__ = ("name", "options", "_selected")

    def __init__(self, name: str, options: list[Option]):
        if not options:
            raise ValueError(f"selector {name} needs at least one option")
        self.name = name
        self.options = list(options)
        self._selected: int | None = None

    @property
    def switch_count(self) -> int:
        return len(self.options)

    @property
    def selected_option(self) -> Option | None:
        return None if self._selected is None else self.options[self._selected]

    def select(self, option: Option) -> None:
        try:
            self._selected = self.options.index(option)
        except ValueError:
            raise ValueError(
                f"selector {self.name} has no option {option!r}; "
                f"available: {self.options}"
            ) from None

    def select_bit(self, r: int) -> None:
        self.select(("bit", r))

    def select_constant(self) -> None:
        self.select(CONST_ZERO)

    def config_bits(self) -> list[int]:
        """Memory-cell contents: a one-hot vector over the switches."""
        if self._selected is None:
            raise RuntimeError(f"selector {self.name} is not configured")
        return [1 if i == self._selected else 0 for i in range(len(self.options))]

    def evaluate(self, addr: int) -> int:
        if self._selected is None:
            raise RuntimeError(f"selector {self.name} is not configured")
        kind, value = self.options[self._selected]
        if kind == "const":
            return value
        return (addr >> value) & 1


class ReconfigurableNetwork:
    """Base: a bank of selectors producing ``m`` index and tag bits."""

    scheme_name = "abstract"

    def __init__(self, n: int, m: int):
        if not 0 < m <= n:
            raise ValueError(f"need 0 < m <= n, got n={n}, m={m}")
        self.n = n
        self.m = m
        self.index_selectors: list[Selector] = []
        self.second_input_selectors: list[Selector] = []
        self.tag_selectors: list[Selector] = []

    # -- structure ------------------------------------------------------

    @property
    def all_selectors(self) -> list[Selector]:
        return self.index_selectors + self.second_input_selectors + self.tag_selectors

    @property
    def switch_count(self) -> int:
        return sum(s.switch_count for s in self.all_selectors)

    @property
    def config_bit_count(self) -> int:
        """One memory cell per switch (paper Sec. 5)."""
        return self.switch_count

    def expected_switch_count(self) -> int:
        """Closed form from Table 1; tests assert it equals the model."""
        raise NotImplementedError

    # -- behaviour -------------------------------------------------------

    def configure_from(self, fn: XorHashFunction) -> None:
        """Program the memory cells to realize ``fn``."""
        raise NotImplementedError

    def index_of(self, addr: int) -> int:
        """Set index computed by the configured network."""
        raise NotImplementedError

    def tag_of(self, addr: int) -> int:
        """Tag bits from the *hashed window* (bits above ``n`` pass
        through unchanged outside the network and are appended here so
        the result matches ``XorHashFunction.tag_of``)."""
        raise NotImplementedError


class _BitSelectTagMixin:
    """Shared tag plumbing for networks with programmable tag selectors."""

    def _configure_tag(self, fn: XorHashFunction) -> None:
        positions = fn.tag_bit_positions()
        if len(positions) != len(self.tag_selectors):
            raise ValueError(
                f"function exposes {len(positions)} tag bits, network has "
                f"{len(self.tag_selectors)} tag selectors"
            )
        for selector, pos in zip(self.tag_selectors, sorted(positions)):
            selector.select_bit(pos)

    def tag_of(self, addr: int) -> int:
        tag = 0
        for out, selector in enumerate(self.tag_selectors):
            tag |= selector.evaluate(addr) << out
        tag |= (addr >> self.n) << len(self.tag_selectors)
        return tag


class PlainBitSelectNetwork(_BitSelectTagMixin, ReconfigurableNetwork):
    """Naive scheme: every output selects among all ``n`` address bits."""

    scheme_name = "bit-select"

    def __init__(self, n: int, m: int):
        super().__init__(n, m)
        all_bits = [("bit", r) for r in range(n)]
        self.index_selectors = [
            Selector(f"index[{c}]", list(all_bits)) for c in range(m)
        ]
        self.tag_selectors = [
            Selector(f"tag[{t}]", list(all_bits)) for t in range(n - m)
        ]

    def expected_switch_count(self) -> int:
        return bit_select_switches(self.n, self.m)

    def configure_from(self, fn: XorHashFunction) -> None:
        if not fn.is_bit_selecting:
            raise ValueError("a bit-select network can only realize fan-in-1 functions")
        if (fn.n, fn.m) != (self.n, self.m):
            raise ValueError(f"function is {fn.n}->{fn.m}, network is {self.n}->{self.m}")
        for c, col in enumerate(fn.columns):
            self.index_selectors[c].select_bit(col.bit_length() - 1)
        self._configure_tag(fn)

    def index_of(self, addr: int) -> int:
        index = 0
        for c, selector in enumerate(self.index_selectors):
            index |= selector.evaluate(addr) << c
        return index


class OptimizedBitSelectNetwork(PlainBitSelectNetwork):
    """Fig. 2(a) without the redundant (shaded) switches.

    Because permuting the index bits of a cache is behaviour-preserving,
    index selector ``c`` only needs the window ``a_c .. a_{c+n-m}`` and
    tag selector ``t`` the window ``a_t .. a_{t+m}`` — any selection
    pattern can be routed by assigning selected bits to index selectors
    in increasing order.
    """

    scheme_name = "optimized bit-select"

    def __init__(self, n: int, m: int):
        ReconfigurableNetwork.__init__(self, n, m)
        self.index_selectors = [
            Selector(f"index[{c}]", [("bit", r) for r in range(c, c + n - m + 1)])
            for c in range(m)
        ]
        self.tag_selectors = [
            Selector(f"tag[{t}]", [("bit", r) for r in range(t, t + m + 1)])
            for t in range(n - m)
        ]

    def expected_switch_count(self) -> int:
        return optimized_bit_select_switches(self.n, self.m)

    def configure_from(self, fn: XorHashFunction) -> None:
        if not fn.is_bit_selecting:
            raise ValueError("a bit-select network can only realize fan-in-1 functions")
        if (fn.n, fn.m) != (self.n, self.m):
            raise ValueError(f"function is {fn.n}->{fn.m}, network is {self.n}->{self.m}")
        # Route selected bits in increasing order; the triangular window
        # always admits this assignment (bit c of the sorted selection
        # lies in [c, c + n - m]).
        selected = sorted(col.bit_length() - 1 for col in fn.columns)
        for c, bit in enumerate(selected):
            self.index_selectors[c].select_bit(bit)
        self._configure_tag(fn)


class GeneralXorNetwork(_BitSelectTagMixin, ReconfigurableNetwork):
    """Reconfigurable 2-input XOR-function network.

    First XOR inputs use the optimized triangular windows; second inputs
    select among a constant (degrading the gate to bit selection) and
    the address bits ``a_c .. a_{n-1}`` (triangular redundancy removed);
    tag bits use the optimized tag windows.
    """

    scheme_name = "general XOR"

    def __init__(self, n: int, m: int):
        super().__init__(n, m)
        self.index_selectors = [
            Selector(f"first[{c}]", [("bit", r) for r in range(c, c + n - m + 1)])
            for c in range(m)
        ]
        self.second_input_selectors = [
            Selector(
                f"second[{c}]",
                [CONST_ZERO] + [("bit", r) for r in range(c, n)],
            )
            for c in range(m)
        ]
        self.tag_selectors = [
            Selector(f"tag[{t}]", [("bit", r) for r in range(t, t + m + 1)])
            for t in range(n - m)
        ]

    def expected_switch_count(self) -> int:
        return general_xor_switches(self.n, self.m)

    @staticmethod
    def routable_form(fn: XorHashFunction) -> XorHashFunction:
        """An equivalent (same null space) function whose gates route.

        The triangular windows require each gate's first input bit to be
        distinct and each second input bit to be no smaller than the
        gate position.  Eliminating shared lowest bits (XORing one
        column into another cancels the shared bit and keeps fan-in at
        2) and sorting columns by lowest bit always produces such a
        representative for full-rank fan-in-<=2 functions.  Column
        operations never change the null space, so cache behaviour is
        preserved exactly.
        """
        if fn.max_fan_in > 2:
            raise ValueError("the general XOR network has 2-input gates")
        if not fn.is_full_rank:
            raise ValueError("routing requires a full-rank function")
        columns = sorted(fn.columns, key=lambda col: col & -col)
        changed = True
        while changed:
            changed = False
            for i in range(len(columns) - 1):
                a, b = columns[i], columns[i + 1]
                if (a & -a) == (b & -b):
                    columns[i + 1] = a ^ b
                    assert columns[i + 1], "full rank rules out equal columns"
                    changed = True
            columns.sort(key=lambda col: col & -col)
        result = XorHashFunction(fn.n, columns)
        assert result.equivalent_to(fn)
        return result

    def configure_from(self, fn: XorHashFunction) -> None:
        if (fn.n, fn.m) != (self.n, self.m):
            raise ValueError(f"function is {fn.n}->{fn.m}, network is {self.n}->{self.m}")
        realized = self.routable_form(fn)
        for gate, col in enumerate(realized.columns):
            low = col & -col
            first = low.bit_length() - 1
            rest = col ^ low
            self.index_selectors[gate].select_bit(first)
            if rest:
                self.second_input_selectors[gate].select_bit(rest.bit_length() - 1)
            else:
                self.second_input_selectors[gate].select_constant()
        #: The function the configured network computes bit-for-bit; it
        #: has the same null space as the requested one.
        self.realized_function = realized
        self._configure_tag(realized)

    def index_of(self, addr: int) -> int:
        index = 0
        for gate in range(self.m):
            bit = self.index_selectors[gate].evaluate(addr) ^ \
                self.second_input_selectors[gate].evaluate(addr)
            index |= bit << gate
        return index


class PermutationNetwork(ReconfigurableNetwork):
    """Fig. 2(b): the cheap permutation-based network.

    First XOR inputs are hard-wired to ``a_0 .. a_{m-1}`` (no switches);
    second inputs select among the ``n - m`` high bits or a constant;
    the tag is hard-wired to the address bits above ``m``.
    """

    scheme_name = "permutation-based"

    def __init__(self, n: int, m: int):
        super().__init__(n, m)
        self.second_input_selectors = [
            Selector(
                f"second[{c}]",
                [CONST_ZERO] + [("bit", r) for r in range(m, n)],
            )
            for c in range(m)
        ]

    def expected_switch_count(self) -> int:
        return permutation_switches(self.n, self.m)

    def configure_from(self, fn: XorHashFunction) -> None:
        if (fn.n, fn.m) != (self.n, self.m):
            raise ValueError(f"function is {fn.n}->{fn.m}, network is {self.n}->{self.m}")
        if not fn.is_permutation_based:
            raise ValueError(
                "the permutation network only realizes permutation-based "
                "functions (use permutation_form() first)"
            )
        if fn.max_fan_in > 2:
            raise ValueError("the permutation network has 2-input gates")
        for c, j in enumerate(fn.sigma()):
            if j is None:
                self.second_input_selectors[c].select_constant()
            else:
                self.second_input_selectors[c].select_bit(j)

    def index_of(self, addr: int) -> int:
        index = 0
        for c in range(self.m):
            bit = ((addr >> c) & 1) ^ self.second_input_selectors[c].evaluate(addr)
            index |= bit << c
        return index

    def tag_of(self, addr: int) -> int:
        """Hard-wired conventional tag: all block-address bits above m."""
        return addr >> self.m


_SCHEMES = {
    "bit-select": PlainBitSelectNetwork,
    "optimized bit-select": OptimizedBitSelectNetwork,
    "general XOR": GeneralXorNetwork,
    "permutation-based": PermutationNetwork,
}


def build_network(scheme: str, n: int, m: int) -> ReconfigurableNetwork:
    """Instantiate one of the four Table 1 schemes by name."""
    try:
        cls = _SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown scheme {scheme!r}; choose from {sorted(_SCHEMES)}"
        ) from None
    return cls(n, m)
