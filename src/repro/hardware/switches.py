"""Closed-form switch counts for reconfigurable indexing (paper Table 1).

Each selector is implemented as pass gates — one switch (pass gate +
config memory cell) per selectable input.  The four schemes of Sec. 5:

* *bit-select*: every one of the ``n`` outputs (``m`` index + ``n - m``
  tag bits) selects among all ``n`` address bits: ``n^2`` switches.
* *optimized bit-select*: permuting index bits is free, so selector
  windows shrink to ``m`` 1-out-of-``(n-m+1)`` index selectors plus
  ``n - m`` 1-out-of-``(m+1)`` tag selectors.
* *general XOR (2-input gates)*: optimized first XOR inputs
  (``m (n-m+1)``), second inputs 1-out-of-``(n+1)`` (a constant input
  lets a gate degrade to bit selection) minus the triangular redundancy
  ``m(m-1)/2``, plus the optimized tag selectors.
* *permutation-based*: first input hard-wired to ``a_c``, tag
  hard-wired to the high bits; only ``m`` second-input selectors of
  1-out-of-``(n-m+1)`` (the ``n - m`` high bits or a constant) remain.
"""

from __future__ import annotations

__all__ = [
    "bit_select_switches",
    "optimized_bit_select_switches",
    "general_xor_switches",
    "permutation_switches",
    "switch_counts",
]


def _validate(n: int, m: int) -> None:
    if not 0 < m <= n:
        raise ValueError(f"need 0 < m <= n, got n={n}, m={m}")


def bit_select_switches(n: int, m: int) -> int:
    """Naive reconfigurable bit selection: ``n`` 1-out-of-``n`` selectors."""
    _validate(n, m)
    return n * n


def optimized_bit_select_switches(n: int, m: int) -> int:
    """Redundancy-free bit selection (Fig. 2a with shaded switches removed)."""
    _validate(n, m)
    return m * (n - m + 1) + (n - m) * (m + 1)


def general_xor_switches(n: int, m: int) -> int:
    """Reconfigurable 2-input XOR-function selector."""
    _validate(n, m)
    first_inputs = m * (n - m + 1)
    second_inputs = m * (n + 1) - m * (m - 1) // 2
    tag_bits = (n - m) * (m + 1)
    return first_inputs + second_inputs + tag_bits


def permutation_switches(n: int, m: int) -> int:
    """Permutation-based 2-input XOR selector (Fig. 2b)."""
    _validate(n, m)
    return m * (n - m + 1)


def switch_counts(n: int, m: int) -> dict[str, int]:
    """All four schemes at once — one column of Table 1."""
    return {
        "bit-select": bit_select_switches(n, m),
        "optimized bit-select": optimized_bit_select_switches(n, m),
        "general XOR": general_xor_switches(n, m),
        "permutation-based": permutation_switches(n, m),
    }
