"""Polynomials over GF(2) and Rau's polynomial hash functions.

The paper's XOR-indexing lineage starts with Rau (ref. [9]), who
interleaved memory banks by reducing the address polynomial modulo an
irreducible polynomial: ``index(a) = a(x) mod p(x)`` over GF(2).  Such
functions are linear, so they are XOR-functions — the matrix row for
address bit ``r`` is ``x^r mod p(x)`` — and because ``x^r mod p = x^r``
for ``r < deg p``, they are *permutation-based* in the paper's sense.

Polynomials are encoded as ints: bit ``i`` is the coefficient of
``x^i`` (so ``x^4 + x + 1`` is ``0b10011``).
"""

from __future__ import annotations

from repro.gf2.hashfn import XorHashFunction

__all__ = [
    "poly_degree",
    "poly_mul",
    "poly_mod",
    "is_irreducible",
    "irreducible_polynomials",
    "polynomial_hash_function",
]


def poly_degree(p: int) -> int:
    """Degree of the polynomial (``-1`` for the zero polynomial)."""
    if p < 0:
        raise ValueError(f"polynomials are encoded as non-negative ints, got {p}")
    return p.bit_length() - 1


def poly_mul(a: int, b: int) -> int:
    """Product of two GF(2) polynomials (carry-less multiplication)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def poly_mod(a: int, p: int) -> int:
    """Remainder of ``a`` modulo ``p`` over GF(2)."""
    if p <= 0:
        raise ValueError("modulus must be a non-zero polynomial")
    dp = poly_degree(p)
    da = poly_degree(a)
    while da >= dp:
        a ^= p << (da - dp)
        da = poly_degree(a)
    return a


def is_irreducible(p: int) -> bool:
    """Exhaustive irreducibility test (fine for the degrees used here).

    A polynomial of degree ``d`` is irreducible iff no polynomial of
    degree 1..d/2 divides it.
    """
    d = poly_degree(p)
    if d <= 0:
        return False
    if d == 1:
        return True
    if not p & 1:  # divisible by x
        return False
    for candidate in range(2, 1 << (d // 2 + 1)):
        if poly_degree(candidate) >= 1 and poly_mod(p, candidate) == 0:
            return False
    return True


def irreducible_polynomials(degree: int) -> list[int]:
    """All irreducible GF(2) polynomials of the given degree, ascending."""
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    low = 1 << degree
    return [p for p in range(low, low << 1) if is_irreducible(p)]


def polynomial_hash_function(n: int, p: int) -> XorHashFunction:
    """Rau's hash: set index = address polynomial mod ``p``.

    ``p`` must have degree ``m`` (the number of index bits) and should
    be irreducible for the stride-mapping guarantees.  Column ``c`` of
    the resulting matrix collects the coefficient of ``x^c`` in
    ``x^r mod p`` across address bits ``r``.
    """
    m = poly_degree(p)
    if not 0 < m <= n:
        raise ValueError(f"modulus degree {m} out of range for n={n}")
    columns = [0] * m
    power = 1  # x^0 mod p
    for r in range(n):
        for c in range(m):
            if (power >> c) & 1:
                columns[c] |= 1 << r
        power = poly_mod(power << 1, p)
    return XorHashFunction(n, columns)
