"""Dense GF(2) matrices stored as rows of machine integers.

A :class:`GF2Matrix` with ``nrows`` rows and ``ncols`` columns stores row
``r`` as a Python int whose bit ``c`` is the entry ``(r, c)``.  Row
operations are therefore single integer XORs, which keeps Gaussian
elimination fast for the matrix sizes used in this package (n <= 64).

The paper represents a hash function as an ``n x m`` matrix ``H`` whose
entry ``(r, c)`` says whether address bit ``r`` feeds the XOR gate of set
index bit ``c`` (``s = a H`` over GF(2)).  :class:`repro.gf2.hashfn.
XorHashFunction` stores the transpose of ``H`` (column masks); this
module provides the generic linear algebra both representations rely on.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.gf2.bitvec import dot, from_bits, mask

__all__ = ["GF2Matrix"]


class GF2Matrix:
    """An immutable matrix over GF(2).

    Parameters
    ----------
    rows:
        Iterable of non-negative integers, one per matrix row; bit ``c``
        of ``rows[r]`` is entry ``(r, c)``.
    ncols:
        Number of columns.  Every row must fit in ``ncols`` bits.
    """

    __slots__ = ("_rows", "_ncols")

    def __init__(self, rows: Iterable[int], ncols: int):
        rows = tuple(int(r) for r in rows)
        if ncols < 0:
            raise ValueError(f"ncols must be non-negative, got {ncols}")
        limit = 1 << ncols
        for i, row in enumerate(rows):
            if row < 0 or row >= limit:
                raise ValueError(
                    f"row {i} value {row:#x} does not fit in {ncols} columns"
                )
        self._rows = rows
        self._ncols = ncols

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zeros(cls, nrows: int, ncols: int) -> "GF2Matrix":
        """The ``nrows x ncols`` zero matrix."""
        return cls([0] * nrows, ncols)

    @classmethod
    def identity(cls, n: int) -> "GF2Matrix":
        """The ``n x n`` identity matrix."""
        return cls([1 << i for i in range(n)], n)

    @classmethod
    def from_bit_rows(cls, bit_rows: Sequence[Sequence[int]]) -> "GF2Matrix":
        """Build from a list of rows, each a list of 0/1 entries.

        ``bit_rows[r][c]`` is entry ``(r, c)``.
        """
        if not bit_rows:
            return cls([], 0)
        ncols = len(bit_rows[0])
        for r, row in enumerate(bit_rows):
            if len(row) != ncols:
                raise ValueError(f"row {r} has {len(row)} entries, expected {ncols}")
        return cls([from_bits(row) for row in bit_rows], ncols)

    @classmethod
    def random(cls, nrows: int, ncols: int, rng) -> "GF2Matrix":
        """Uniformly random matrix drawn from ``rng`` (``numpy.random.Generator``
        or ``random.Random``)."""
        limit = 1 << ncols
        if hasattr(rng, "integers"):  # numpy Generator
            rows = [int(rng.integers(0, limit)) for _ in range(nrows)]
        else:
            rows = [rng.randrange(limit) for _ in range(nrows)]
        return cls(rows, ncols)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def nrows(self) -> int:
        return len(self._rows)

    @property
    def ncols(self) -> int:
        return self._ncols

    @property
    def rows(self) -> tuple[int, ...]:
        """Rows as integers (bit ``c`` of row ``r`` = entry ``(r, c)``)."""
        return self._rows

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self._ncols)

    def entry(self, r: int, c: int) -> int:
        """Entry ``(r, c)`` as 0 or 1."""
        if not (0 <= r < self.nrows and 0 <= c < self._ncols):
            raise IndexError(f"entry ({r}, {c}) out of range for shape {self.shape}")
        return (self._rows[r] >> c) & 1

    def to_bit_rows(self) -> list[list[int]]:
        """Rows as lists of 0/1 entries (inverse of :meth:`from_bit_rows`)."""
        return [[(row >> c) & 1 for c in range(self._ncols)] for row in self._rows]

    def column(self, c: int) -> int:
        """Column ``c`` packed as an integer (bit ``r`` = entry ``(r, c)``)."""
        if not 0 <= c < self._ncols:
            raise IndexError(f"column {c} out of range for {self._ncols} columns")
        value = 0
        for r, row in enumerate(self._rows):
            value |= ((row >> c) & 1) << r
        return value

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def vecmat(self, x: int) -> int:
        """Row-vector times matrix: ``x @ self`` over GF(2).

        ``x`` is a bit vector of length ``nrows``; the result has length
        ``ncols``.  This is the paper's ``s = a H`` when ``self`` is the
        hash matrix ``H``.
        """
        if x < 0 or x >= (1 << self.nrows):
            raise ValueError(f"vector {x:#x} does not fit in {self.nrows} bits")
        acc = 0
        rows = self._rows
        while x:
            low = x & -x
            acc ^= rows[low.bit_length() - 1]
            x ^= low
        return acc

    def matvec(self, y: int) -> int:
        """Matrix times column-vector: ``self @ y^T`` over GF(2).

        ``y`` is a bit vector of length ``ncols``; the result has length
        ``nrows`` (bit ``r`` = parity of ``rows[r] & y``).
        """
        if y < 0 or y >= (1 << self._ncols):
            raise ValueError(f"vector {y:#x} does not fit in {self._ncols} bits")
        acc = 0
        for r, row in enumerate(self._rows):
            acc |= dot(row, y) << r
        return acc

    def __matmul__(self, other: "GF2Matrix") -> "GF2Matrix":
        if self._ncols != other.nrows:
            raise ValueError(
                f"cannot multiply {self.shape} by {other.shape}: inner dims differ"
            )
        return GF2Matrix([other.vecmat(row) for row in self._rows], other.ncols)

    def __add__(self, other: "GF2Matrix") -> "GF2Matrix":
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        return GF2Matrix(
            [a ^ b for a, b in zip(self._rows, other.rows)], self._ncols
        )

    def transpose(self) -> "GF2Matrix":
        return GF2Matrix(
            [self.column(c) for c in range(self._ncols)], self.nrows
        )

    # ------------------------------------------------------------------
    # Elimination
    # ------------------------------------------------------------------

    def rref(self) -> tuple["GF2Matrix", tuple[int, ...]]:
        """Reduced row-echelon form and the pivot column indices.

        Pivot columns are scanned from the most significant column down,
        so the canonical form of a row space does not depend on row
        order.  Zero rows are kept (the shape is preserved).
        """
        rows = list(self._rows)
        pivots: list[int] = []
        rank = 0
        for c in reversed(range(self._ncols)):
            bit = 1 << c
            pivot_row = None
            for r in range(rank, len(rows)):
                if rows[r] & bit:
                    pivot_row = r
                    break
            if pivot_row is None:
                continue
            rows[rank], rows[pivot_row] = rows[pivot_row], rows[rank]
            for r in range(len(rows)):
                if r != rank and rows[r] & bit:
                    rows[r] ^= rows[rank]
            pivots.append(c)
            rank += 1
        return GF2Matrix(rows, self._ncols), tuple(pivots)

    def rank(self) -> int:
        """Rank over GF(2)."""
        __, pivots = self.rref()
        return len(pivots)

    def kernel(self) -> list[int]:
        """Basis of the right null space ``{ y : self @ y^T = 0 }``.

        Returned vectors have length ``ncols``.  Applied to the
        transpose of a hash matrix ``H`` (i.e. a matrix whose rows are
        the column masks of ``H``), this is exactly the paper's null
        space ``N(H) = { x : x H = 0 }`` of Eq. (1).
        """
        reduced, pivots = self.rref()
        pivot_set = set(pivots)
        free_cols = [c for c in range(self._ncols) if c not in pivot_set]
        basis: list[int] = []
        for free in free_cols:
            vec = 1 << free
            for r, pivot_col in enumerate(pivots):
                if (reduced.rows[r] >> free) & 1:
                    vec |= 1 << pivot_col
            basis.append(vec)
        return basis

    def inverse(self) -> "GF2Matrix":
        """Inverse of a square invertible matrix.

        Raises ``ValueError`` when the matrix is singular or not square.
        """
        n = self.nrows
        if n != self._ncols:
            raise ValueError(f"inverse requires a square matrix, got {self.shape}")
        # Augment [self | I] and reduce the left half to the identity.
        aug = [row | (1 << (n + r)) for r, row in enumerate(self._rows)]
        rank = 0
        for c in reversed(range(n)):
            bit = 1 << c
            pivot_row = None
            for r in range(rank, n):
                if aug[r] & bit:
                    pivot_row = r
                    break
            if pivot_row is None:
                raise ValueError("matrix is singular over GF(2)")
            aug[rank], aug[pivot_row] = aug[pivot_row], aug[rank]
            for r in range(n):
                if r != rank and aug[r] & bit:
                    aug[r] ^= aug[rank]
            rank += 1
        # After reduction row k has pivot in some column; sort rows so the
        # left half is the identity, then read off the right half.
        left_mask = mask(n)
        ordered = [0] * n
        for row in aug:
            left = row & left_mask
            if left.bit_count() != 1:
                raise ValueError("matrix is singular over GF(2)")
            ordered[left.bit_length() - 1] = row >> n
        return GF2Matrix(ordered, n)

    def is_full_rank(self) -> bool:
        """True when rank equals ``min(nrows, ncols)``."""
        return self.rank() == min(self.nrows, self._ncols)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, GF2Matrix):
            return NotImplemented
        return self._ncols == other._ncols and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._rows, self._ncols))

    def __repr__(self) -> str:
        return f"GF2Matrix(shape={self.shape}, rows={[bin(r) for r in self._rows]})"

    def __str__(self) -> str:
        lines = []
        for row in self._rows:
            lines.append(" ".join(str((row >> c) & 1) for c in range(self._ncols)))
        return "\n".join(lines)
