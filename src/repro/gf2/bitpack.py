"""Bit-packed GF(2) batch kernels: 64 vectors per machine word.

The estimator's hot loops evaluate ``parity(v & h)`` for *many* support
vectors ``v`` under *many* column masks ``h``.  Element-wise that costs
one masked popcount per (vector, mask) pair.  Packed, it collapses into
word-wide XORs: store the support as *bit planes* — plane ``i`` holds
bit ``i`` of every vector, 64 vectors per ``uint64`` word — and the
parity row of a mask is simply the XOR of its selected planes::

    parity(v & h) = XOR over set bits i of h of bit_i(v)

so one mask costs ``popcount(h)`` XOR passes over ``support/64`` words
instead of ``support`` masked popcounts — a ~64x traffic reduction that
is independent of the window width ``n`` (the 16-bit parity-table
gather in :mod:`repro.gf2.bitvec` is width-limited; this kernel is
not).

Weighted reductions unpack a packed parity row back to bytes once
(:func:`weighted_popcount`); unweighted counts stay packed end to end
(:func:`popcount_rows`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_bit_planes",
    "pack_bits",
    "unpack_bits",
    "packed_any_rows",
    "packed_parity_rows",
    "popcount_rows",
    "weighted_popcount",
]

_WORD = 64

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

_byte_popcount: np.ndarray | None = None


def _byte_popcount_table() -> np.ndarray:
    """256-entry popcount table (NumPy < 2.0 fallback)."""
    global _byte_popcount
    if _byte_popcount is None:
        values = np.arange(256, dtype=np.uint8)
        counts = np.zeros(256, dtype=np.uint8)
        for shift in range(8):
            counts += (values >> shift) & 1
        _byte_popcount = counts
    return _byte_popcount


def _words_for(count: int) -> int:
    return (count + _WORD - 1) // _WORD


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 vector into ``uint64`` words, 64 entries per word.

    Entry ``j`` lands in word ``j // 64``, bit ``j % 64`` (little-endian
    within the word), so packed representations of equal-length vectors
    are XOR-compatible.  The tail of the last word is zero.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    words = _words_for(len(bits))
    padded = np.zeros(words * 8, dtype=np.uint8)
    packed_bytes = np.packbits(bits, bitorder="little")
    padded[: len(packed_bytes)] = packed_bytes
    return padded.view(np.uint64)


def unpack_bits(words: np.ndarray, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: the first ``count`` bits as uint8.

    Also accepts a 2-D ``(rows, words)`` array, unpacking each row.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    bits = np.unpackbits(words.view(np.uint8), axis=-1 if words.ndim > 1 else 0,
                         bitorder="little")
    return bits[..., :count]


def pack_bit_planes(vectors: np.ndarray, n: int) -> np.ndarray:
    """Bit-plane packing of a vector array: ``(n, ceil(len/64))`` words.

    Plane ``i`` is :func:`pack_bits` of bit ``i`` of every vector, so
    row XORs of the result evaluate GF(2) inner products against the
    whole array at once (:func:`packed_parity_rows`).
    """
    vectors = np.asarray(vectors)
    if vectors.dtype.kind != "u":
        vectors = vectors.astype(np.uint64)
    count = len(vectors)
    planes = np.zeros((n, _words_for(count)), dtype=np.uint64)
    if count == 0:
        return planes
    # One transpose of the (vectors x bits) matrix: unpack every vector
    # to its bits, flip to bit-major, re-pack each plane row.
    as_bytes = np.ascontiguousarray(vectors).view(np.uint8).reshape(count, -1)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    usable = min(n, bits.shape[1])
    bit_major = np.ascontiguousarray(bits[:, :usable].T)
    packed = np.packbits(bit_major, axis=1, bitorder="little")
    planes.view(np.uint8)[:usable, : packed.shape[1]] = packed
    return planes


def packed_parity_rows(planes: np.ndarray, masks: np.ndarray) -> np.ndarray:
    """Packed ``parity(v & mask)`` rows for every mask.

    ``planes`` is :func:`pack_bit_planes` output; the result row ``r``
    holds, bit-packed, the parity of every vector against
    ``masks[r]`` — the XOR of the planes selected by the mask's bits.
    """
    masks = np.asarray(masks)
    n, words = planes.shape
    out = np.zeros((len(masks), words), dtype=np.uint64)
    if len(masks) == 0:
        return out
    wide = masks.astype(np.uint64)
    for i in range(n):
        selected = (wide >> np.uint64(i)) & np.uint64(1) != 0
        if selected.any():
            out[selected] ^= planes[i]
    return out


def packed_any_rows(planes: np.ndarray, masks: np.ndarray) -> np.ndarray:
    """Packed ``(v & mask) != 0`` rows for every mask.

    The *membership* counterpart of :func:`packed_parity_rows`: bit
    ``j`` of result row ``r`` is set iff vector ``j`` intersects
    ``masks[r]`` — the OR (not XOR) of the selected planes.  Bit
    selection needs this accumulation: a profiled vector survives a
    selection mask ``M`` iff ``v & M == 0``, so the *unset* bits of a
    row mark the survivors.
    """
    masks = np.asarray(masks)
    n, words = planes.shape
    out = np.zeros((len(masks), words), dtype=np.uint64)
    if len(masks) == 0:
        return out
    wide = masks.astype(np.uint64)
    for i in range(n):
        selected = (wide >> np.uint64(i)) & np.uint64(1) != 0
        if selected.any():
            out[selected] |= planes[i]
    return out


def popcount_rows(rows: np.ndarray) -> np.ndarray:
    """Set-bit count of each packed row (``int64``)."""
    rows = np.atleast_2d(np.asarray(rows, dtype=np.uint64))
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(rows).sum(axis=1, dtype=np.int64)
    as_bytes = np.ascontiguousarray(rows).view(np.uint8)
    return (
        _byte_popcount_table()[as_bytes]
        .sum(axis=1, dtype=np.int64)
        .reshape(len(rows))
    )


def weighted_popcount(
    rows: np.ndarray, weights: np.ndarray, count: int | None = None
) -> np.ndarray:
    """Weight-sum of the set bits of each packed row.

    ``weights`` aligns with the *unpacked* bit positions (the vector
    order given to :func:`pack_bit_planes`); ``count`` defaults to
    ``len(weights)``.  Returns ``int64`` sums, one per row — the packed
    replacement for ``parities @ weights``.
    """
    rows = np.atleast_2d(np.asarray(rows, dtype=np.uint64))
    weights = np.asarray(weights)
    if count is None:
        count = len(weights)
    bits = unpack_bits(rows, count)
    return bits.astype(np.int64) @ weights[:count]
