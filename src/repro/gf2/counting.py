"""Counting formulas for the hash-function design space (paper Sec. 2).

The paper quantifies the design space of ``n``-to-``m`` XOR hash
functions: there are ~3.4e38 distinct full-rank matrices for
``n=16, m=8`` but only ~6.3e19 distinct null spaces (Eq. 3), which is
why the search runs over null spaces.
"""

from __future__ import annotations

__all__ = [
    "gaussian_binomial",
    "num_distinct_null_spaces",
    "num_full_rank_matrices",
    "num_matrices",
    "num_subspaces_total",
]


def gaussian_binomial(n: int, k: int, q: int = 2) -> int:
    """Gaussian binomial coefficient ``[n choose k]_q``.

    Counts the ``k``-dimensional subspaces of an ``n``-dimensional vector
    space over GF(q).  Exact integer arithmetic.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if k < 0 or k > n:
        return 0
    numerator = 1
    denominator = 1
    for i in range(k):
        numerator *= q ** (n - i) - 1
        denominator *= q ** (i + 1) - 1
    assert numerator % denominator == 0
    return numerator // denominator


def num_distinct_null_spaces(n: int, m: int) -> int:
    """Paper Eq. 3: the number of distinct ``n``-to-``m`` hash functions
    counted up to null space.

    ``N(n, m) = prod_{i=1..m} (2^{n-i+1} - 1) / (2^i - 1)``, which equals
    the Gaussian binomial ``[n choose m]_2``: a full-rank function is
    determined, up to behaviour, by its ``(n-m)``-dimensional null space,
    and subspace counts are symmetric (``[n,m]_2 = [n,n-m]_2``).
    """
    if not 0 <= m <= n:
        raise ValueError(f"need 0 <= m <= n, got n={n}, m={m}")
    result = gaussian_binomial(n, m)
    # Cross-check against the literal product of Eq. 3.
    numerator = 1
    denominator = 1
    for i in range(1, m + 1):
        numerator *= (1 << (n - i + 1)) - 1
        denominator *= (1 << i) - 1
    assert numerator // denominator == result
    return result


def num_full_rank_matrices(n: int, m: int) -> int:
    """Number of rank-``m`` binary ``n x m`` matrices.

    This is the paper's "3.4e38 distinct matrices" for ``n=16, m=8``:
    ``prod_{i=0..m-1} (2^n - 2^i)`` (choose linearly independent columns
    one at a time).
    """
    if not 0 <= m <= n:
        raise ValueError(f"need 0 <= m <= n, got n={n}, m={m}")
    count = 1
    for i in range(m):
        count *= (1 << n) - (1 << i)
    return count


def num_matrices(n: int, m: int) -> int:
    """Total number of binary ``n x m`` matrices (``2**(n*m)``)."""
    if n < 0 or m < 0:
        raise ValueError(f"dimensions must be non-negative, got n={n}, m={m}")
    return 1 << (n * m)


def num_subspaces_total(n: int) -> int:
    """Total number of subspaces of GF(2)^n over all dimensions."""
    return sum(gaussian_binomial(n, k) for k in range(n + 1))
