"""Bit-vector helpers for GF(2) arithmetic on machine integers.

Throughout the package a GF(2) vector of length ``n`` is stored as a
Python ``int`` (or a numpy integer array) whose bit ``i`` holds
coordinate ``i``.  Bit 0 is the least significant address bit, matching
the paper's convention ``a = a_{n-1} ... a_1 a_0``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "parity",
    "popcount",
    "mask",
    "bits_of",
    "from_bits",
    "parity_table",
    "parity_array",
    "dot",
    "weight_at_most",
]

_PARITY_TABLE_BITS = 16


def popcount(x: int) -> int:
    """Number of one bits in the non-negative integer ``x``."""
    if x < 0:
        raise ValueError(f"popcount requires a non-negative integer, got {x}")
    return x.bit_count()


def parity(x: int) -> int:
    """Parity (XOR of all bits) of the non-negative integer ``x``."""
    return popcount(x) & 1


def dot(x: int, y: int) -> int:
    """GF(2) inner product of two bit vectors: ``parity(x & y)``."""
    return parity(x & y)


def mask(n: int) -> int:
    """Bit mask with the ``n`` least significant bits set."""
    if n < 0:
        raise ValueError(f"mask width must be non-negative, got {n}")
    return (1 << n) - 1


def bits_of(x: int, n: int) -> list[int]:
    """Bits of ``x`` as a list ``[bit_0, bit_1, ..., bit_{n-1}]``."""
    return [(x >> i) & 1 for i in range(n)]


def from_bits(bits) -> int:
    """Inverse of :func:`bits_of`: pack ``[bit_0, bit_1, ...]`` into an int."""
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit {i} is {bit!r}, expected 0 or 1")
        value |= bit << i
    return value


def weight_at_most(x: int, k: int) -> bool:
    """True when ``x`` has at most ``k`` one bits."""
    return popcount(x) <= k


_parity16: np.ndarray | None = None

#: ``np.bitwise_count`` only exists on NumPy >= 2.0; everything below
#: falls back to XOR-folding plus the 16-bit parity table so the engine
#: also runs on NumPy 1.x.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def parity_table() -> np.ndarray:
    """Lookup table ``t`` with ``t[v] = parity(v)`` for 16-bit values.

    Used to vectorize GF(2) inner products over numpy arrays: the parity
    of ``v & h`` for a column mask ``h`` that fits in 16 bits is
    ``parity_table()[v & h]``.
    """
    global _parity16
    if _parity16 is None:
        folded = np.arange(1 << _PARITY_TABLE_BITS, dtype=np.uint16)
        for shift in (8, 4, 2, 1):
            folded = folded ^ (folded >> np.uint16(shift))
        _parity16 = (folded & np.uint16(1)).astype(np.uint8)
    return _parity16


_parity_byte: np.ndarray | None = None


def _parity_byte_table() -> np.ndarray:
    """256-entry parity lookup table, one entry per byte value."""
    global _parity_byte
    if _parity_byte is None:
        folded = np.arange(256, dtype=np.uint8)
        for shift in (4, 2, 1):
            folded = folded ^ (folded >> np.uint8(shift))
        _parity_byte = folded & np.uint8(1)
    return _parity_byte


def parity_array(values: np.ndarray) -> np.ndarray:
    """Elementwise parity of an integer array of any shape and width.

    The wide-window parity kernel: unlike :func:`parity_table` (a
    16-bit value-indexed gather) it has no operand-width limit, so the
    estimator's support-side evaluation works for hashed windows of any
    ``n``.  Uses ``np.bitwise_count`` on NumPy >= 2.0; otherwise views
    the operands as packed bytes and XOR-reduces a 256-entry byte
    parity table over them, one table row per operand byte.

    Returns a ``uint8`` array of 0/1 parities with ``values``'s shape.
    """
    values = np.asarray(values)
    if values.dtype.kind != "u":
        values = values.astype(np.uint64)
    if _HAS_BITWISE_COUNT:
        return (np.bitwise_count(values) & values.dtype.type(1)).astype(np.uint8)
    values = np.ascontiguousarray(values)
    itemsize = values.dtype.itemsize
    as_bytes = values.view(np.uint8).reshape(values.shape + (itemsize,))
    return np.bitwise_xor.reduce(_parity_byte_table()[as_bytes], axis=-1)


def parity_u64(values: np.ndarray, column_mask: int) -> np.ndarray:
    """Vectorized ``parity(values & column_mask)`` for a numpy array.

    Works for masks of any width up to 64 bits.  Returns a ``uint8``
    array of 0/1 parities.
    """
    masked = np.bitwise_and(np.asarray(values).astype(np.uint64), np.uint64(column_mask))
    if _HAS_BITWISE_COUNT:
        return (np.bitwise_count(masked) & 1).astype(np.uint8)
    folded = masked ^ (masked >> np.uint64(32))
    folded ^= folded >> np.uint64(16)
    return parity_table()[(folded & np.uint64(0xFFFF)).astype(np.uint16)]
