"""XOR-based hash functions for cache set indexing (paper Sec. 2).

A hash function is an ``n x m`` binary matrix ``H``: set index bit ``c``
is the XOR of the address bits selected by column ``c`` of ``H``
(``s = a H`` over GF(2)).  :class:`XorHashFunction` stores the *column
masks* ``h_c`` (integers of ``n`` bits), which makes evaluation a parity
of ``addr & h_c`` and vectorizes cleanly over numpy arrays.

The class also derives the matching tag function.  The paper requires
tag and set index to be jointly bijective; for permutation-based
functions the conventional tag (address bits above the index) works
unchanged, and for general functions a bit-selecting tag always exists
(Sec. 4) — we select the pivot positions of the null space's canonical
basis, which restores injectivity by construction.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.gf2.bitvec import dot, mask, parity_table, parity_u64, popcount
from repro.gf2.matrix import GF2Matrix
from repro.gf2.spaces import Subspace

__all__ = ["XorHashFunction"]


class XorHashFunction:
    """An ``n``-bit-to-``m``-bit XOR hash function.

    Parameters
    ----------
    n:
        Number of hashed (low-order) block-address bits.
    columns:
        ``m`` column masks; bit ``r`` of ``columns[c]`` says address bit
        ``r`` feeds the XOR gate of set index bit ``c``.
    """

    __slots__ = ("_n", "_columns", "_null_space", "_byte_tables")

    def __init__(self, n: int, columns: Iterable[int]):
        self._n = int(n)
        cols = tuple(int(c) for c in columns)
        if self._n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if not cols:
            raise ValueError("a hash function needs at least one column")
        if len(cols) > self._n:
            raise ValueError(
                f"more index bits ({len(cols)}) than hashed address bits ({self._n})"
            )
        limit = 1 << self._n
        for c, col in enumerate(cols):
            if col < 0 or col >= limit:
                raise ValueError(
                    f"column {c} mask {col:#x} does not fit in {self._n} bits"
                )
        self._columns = cols
        self._null_space: Subspace | None = None
        self._byte_tables: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def modulo(cls, n: int, m: int) -> "XorHashFunction":
        """The conventional index function: select the ``m`` low bits."""
        return cls(n, [1 << c for c in range(m)])

    @classmethod
    def bit_select(cls, n: int, selected_bits: Sequence[int]) -> "XorHashFunction":
        """A bit-selecting function choosing the given address bits.

        ``selected_bits[c]`` is the address bit wired to index bit ``c``.
        """
        seen = set()
        for b in selected_bits:
            if not 0 <= b < n:
                raise ValueError(f"selected bit {b} out of range [0, {n})")
            if b in seen:
                raise ValueError(f"selected bit {b} repeated; function would be rank-deficient")
            seen.add(b)
        return cls(n, [1 << b for b in selected_bits])

    @classmethod
    def from_matrix(cls, matrix: GF2Matrix) -> "XorHashFunction":
        """Build from the paper's ``n x m`` matrix representation."""
        return cls(matrix.nrows, [matrix.column(c) for c in range(matrix.ncols)])

    @classmethod
    def from_sigma(
        cls, n: int, m: int, sigma: Mapping[int, int | None] | Sequence[int | None]
    ) -> "XorHashFunction":
        """Build a 2-input permutation-based function (paper Sec. 5).

        Index bit ``c`` is ``a_c XOR a_{sigma[c]}`` with ``sigma[c]`` one
        of the ``n - m`` high-order bits, or just ``a_c`` when
        ``sigma[c]`` is ``None``.
        """
        if isinstance(sigma, Mapping):
            entries = [sigma.get(c) for c in range(m)]
        else:
            entries = list(sigma)
            if len(entries) != m:
                raise ValueError(f"sigma has {len(entries)} entries, expected {m}")
        columns = []
        for c, j in enumerate(entries):
            col = 1 << c
            if j is not None:
                if not m <= j < n:
                    raise ValueError(
                        f"sigma[{c}] = {j} must be a high-order bit in [{m}, {n})"
                    )
                col |= 1 << j
            columns.append(col)
        return cls(n, columns)

    @classmethod
    def random(
        cls,
        n: int,
        m: int,
        rng,
        max_fan_in: int | None = None,
        permutation: bool = False,
    ) -> "XorHashFunction":
        """A random full-rank hash function.

        ``max_fan_in`` bounds the number of inputs per XOR gate;
        ``permutation=True`` forces the permutation-based structure
        (identity on the low ``m`` rows).
        """

        def draw() -> int:
            high = 1 << n
            if hasattr(rng, "integers"):
                return int(rng.integers(0, high))
            return rng.randrange(high)

        fan_in = max_fan_in if max_fan_in is not None else n
        if fan_in < 1:
            raise ValueError(f"max_fan_in must be >= 1, got {max_fan_in}")
        while True:
            columns = []
            for c in range(m):
                while True:
                    col = draw()
                    if permutation:
                        col = (col & ~mask(m)) | (1 << c)
                        if popcount(col) > fan_in:
                            # Trim high bits down to the budget.
                            extra = col & ~mask(m)
                            while popcount(extra) > fan_in - 1:
                                extra &= extra - 1
                            col = (1 << c) | extra
                    if popcount(col) == 0:
                        continue
                    if popcount(col) <= fan_in:
                        break
                columns.append(col)
            candidate = cls(n, columns)
            if candidate.is_full_rank:
                return candidate

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of hashed address bits."""
        return self._n

    @property
    def m(self) -> int:
        """Number of set index bits."""
        return len(self._columns)

    @property
    def columns(self) -> tuple[int, ...]:
        """Column masks ``h_c``."""
        return self._columns

    def matrix(self) -> GF2Matrix:
        """The paper's ``n x m`` matrix ``H`` (rows = address bits)."""
        rows = []
        for r in range(self._n):
            row = 0
            for c, col in enumerate(self._columns):
                row |= ((col >> r) & 1) << c
            rows.append(row)
        return GF2Matrix(rows, self.m)

    @property
    def max_fan_in(self) -> int:
        """Largest number of inputs feeding any XOR gate."""
        return max(popcount(col) for col in self._columns)

    @property
    def rank(self) -> int:
        """Rank of the column masks over GF(2)."""
        return GF2Matrix(self._columns, self._n).rank()

    @property
    def is_full_rank(self) -> bool:
        """True when all ``m`` index bits are linearly independent."""
        return self.rank == self.m

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def apply(self, addr: int) -> int:
        """Set index of a single block address (only low ``n`` bits used)."""
        addr &= mask(self._n)
        index = 0
        for c, col in enumerate(self._columns):
            index |= dot(addr, col) << c
        return index

    def __call__(self, addr: int) -> int:
        return self.apply(addr)

    #: Array size from which :meth:`apply_array` switches to the cached
    #: byte tables.  Below it the per-column paths win (no table-build
    #: cost); above it the whole index comes from one small L1-resident
    #: gather per operand byte instead of one wide gather per column.
    _BYTE_TABLE_MIN = 1 << 12

    def _index_byte_tables(self) -> np.ndarray:
        """Per-byte index tables: ``tables[j][v]`` is the full ``m``-bit
        set index the ``j``-th address byte ``v`` contributes.

        The hash is GF(2)-linear, so the index of an address is the XOR
        of its bytes' contributions — ``ceil(n/8)`` 256-entry gathers
        replace ``m`` full-width parity passes.
        """
        if self._byte_tables is None:
            num_bytes = (self._n + 7) // 8
            tables = np.zeros((num_bytes, 256), dtype=np.uint32)
            table16 = parity_table()
            byte_values = np.arange(256, dtype=np.uint16)
            for j in range(num_bytes):
                for c, col in enumerate(self._columns):
                    col_byte = np.uint16((col >> (8 * j)) & 0xFF)
                    bits = table16[byte_values & col_byte]
                    tables[j] |= bits.astype(np.uint32) << np.uint32(c)
            self._byte_tables = tables
        return self._byte_tables

    def apply_array(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`apply` for a numpy array of block addresses."""
        addrs = np.asarray(addrs)
        masked = np.bitwise_and(addrs.astype(np.uint64), np.uint64(mask(self._n)))
        out = np.zeros(masked.shape, dtype=np.uint32)
        if masked.size >= self._BYTE_TABLE_MIN:
            tables = self._index_byte_tables()
            if np.little_endian:
                operand_bytes = np.ascontiguousarray(masked).view(np.uint8)
                operand_bytes = operand_bytes.reshape(masked.shape + (8,))
                for j in range(len(tables)):
                    out ^= tables[j][operand_bytes[..., j]]
            else:  # pragma: no cover - big-endian hosts
                for j in range(len(tables)):
                    byte = np.bitwise_and(
                        masked >> np.uint64(8 * j), np.uint64(0xFF)
                    ).astype(np.intp)
                    out ^= tables[j][byte]
        elif self._n <= 16:
            table = parity_table()
            small = masked.astype(np.uint16)
            for c, col in enumerate(self._columns):
                bits = table[np.bitwise_and(small, np.uint16(col))]
                out |= bits.astype(np.uint32) << np.uint32(c)
        else:
            for c, col in enumerate(self._columns):
                bits = parity_u64(masked, col).astype(np.uint32)
                out |= bits << np.uint32(c)
        return out

    # ------------------------------------------------------------------
    # Null space and equivalence (paper Sec. 2)
    # ------------------------------------------------------------------

    def null_space(self) -> Subspace:
        """``N(H) = { x : x H = 0 }`` (paper Eq. 1).

        Two blocks ``x`` and ``y`` can conflict iff ``x ^ y`` lies in
        this subspace (Eq. 2).
        """
        if self._null_space is None:
            kernel = GF2Matrix(self._columns, self._n).kernel()
            self._null_space = Subspace(kernel, self._n)
        return self._null_space

    def column_space(self) -> Subspace:
        """Span of the column masks (= ``N(H)^⊥``)."""
        return Subspace(self._columns, self._n)

    def canonical_key(self) -> tuple:
        """A hashable key identifying this function up to null space.

        Functions with equal keys map every pair of blocks to equal-or-
        different sets identically, hence have identical miss behaviour.
        """
        return (self._n, self.column_space().basis)

    def equivalent_to(self, other: "XorHashFunction") -> bool:
        """True when both functions have the same null space."""
        return self.canonical_key() == other.canonical_key()

    # ------------------------------------------------------------------
    # Families (paper Secs. 4-5)
    # ------------------------------------------------------------------

    @property
    def is_bit_selecting(self) -> bool:
        """True when every index bit is a plain address bit (fan-in 1)."""
        return all(popcount(col) == 1 for col in self._columns)

    @property
    def is_permutation_based(self) -> bool:
        """Structural check: the low ``m`` rows of ``H`` form the identity.

        Equivalent to column ``c`` containing bit ``c`` and no other
        low-order bit.  This is the representation used by the cheap
        reconfigurable hardware of Sec. 5.
        """
        m = self.m
        low = mask(m)
        return all((col & low) == (1 << c) for c, col in enumerate(self._columns))

    def has_permutation_null_space(self) -> bool:
        """Paper Eq. 5: ``N(H) ∩ span(e_0..e_{m-1}) = {0}``.

        Functions satisfying this admit a permutation-based
        representation (see :meth:`permutation_form`) and map every
        aligned run of ``2^m`` blocks conflict-free.
        """
        low_span = Subspace.span_of_units(range(self.m), self._n)
        return self.null_space().intersects_trivially(low_span)

    def permutation_form(self) -> "XorHashFunction":
        """Rewrite as an equivalent permutation-based function.

        Requires :meth:`has_permutation_null_space`; raises ``ValueError``
        otherwise.  The result has the same null space (hence identical
        miss behaviour) and identity low-order rows.
        """
        if not self.is_full_rank:
            raise ValueError("permutation form requires a full-rank function")
        if not self.has_permutation_null_space():
            raise ValueError(
                "null space intersects span(e_0..e_{m-1}); no permutation form exists"
            )
        m = self.m
        rows = list(self._columns)
        # Gauss-Jordan on the low m bit positions: afterwards row c has
        # low-order part exactly e_c.  Solvable because the restriction
        # of the column space to the low bits is bijective under Eq. 5.
        for c in range(m):
            bit = 1 << c
            pivot = None
            for r in range(c, m):
                if rows[r] & bit:
                    pivot = r
                    break
            assert pivot is not None, "Eq. 5 guarantees a pivot"
            rows[c], rows[pivot] = rows[pivot], rows[c]
            for r in range(m):
                if r != c and rows[r] & bit:
                    rows[r] ^= rows[c]
        result = XorHashFunction(self._n, rows)
        assert result.is_permutation_based
        return result

    def sigma(self) -> list[int | None]:
        """Extract the selector map of a 2-input permutation function.

        ``sigma[c]`` is the high-order bit XORed into index bit ``c``,
        or ``None`` when index bit ``c`` passes ``a_c`` through
        unhashed.  Raises ``ValueError`` for functions outside the
        2-input permutation family.
        """
        if not self.is_permutation_based:
            raise ValueError("sigma is only defined for permutation-based functions")
        if self.max_fan_in > 2:
            raise ValueError("sigma is only defined for fan-in <= 2")
        result: list[int | None] = []
        for c, col in enumerate(self._columns):
            high = col ^ (1 << c)
            result.append(high.bit_length() - 1 if high else None)
        return result

    # ------------------------------------------------------------------
    # Tag function (paper Sec. 4)
    # ------------------------------------------------------------------

    def tag_bit_positions(self) -> tuple[int, ...]:
        """Hashed-address bit positions selected by the tag function.

        The tag is always bit-selecting (paper Sec. 4).  We select the
        pivot positions of the null space's canonical basis: restricted
        to those ``n - m`` coordinates the null space projects
        injectively, which makes (tag, index) jointly bijective.  For
        permutation-based functions this yields exactly bits
        ``m .. n-1`` — the conventional tag.
        """
        if not self.is_full_rank:
            raise ValueError("tag function requires a full-rank index function")
        return tuple(sorted(self.null_space().pivots))

    def tag_of(self, addr: int) -> int:
        """Tag of a block address: selected low bits plus all bits >= n."""
        positions = self.tag_bit_positions()
        tag = 0
        for out_bit, pos in enumerate(positions):
            tag |= ((addr >> pos) & 1) << out_bit
        tag |= (addr >> self._n) << len(positions)
        return tag

    def tag_array(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`tag_of`."""
        addrs = np.asarray(addrs).astype(np.uint64)
        positions = self.tag_bit_positions()
        tag = np.zeros(addrs.shape, dtype=np.uint64)
        for out_bit, pos in enumerate(positions):
            bit = np.bitwise_and(addrs >> np.uint64(pos), np.uint64(1))
            tag |= bit << np.uint64(out_bit)
        tag |= (addrs >> np.uint64(self._n)) << np.uint64(len(positions))
        return tag

    # ------------------------------------------------------------------
    # Serialization and plumbing
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        return {"n": self._n, "columns": list(self._columns)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "XorHashFunction":
        return cls(int(data["n"]), data["columns"])

    def with_column(self, c: int, new_mask: int) -> "XorHashFunction":
        """Copy with column ``c`` replaced (used by search neighbourhoods)."""
        if not 0 <= c < self.m:
            raise IndexError(f"column {c} out of range for m={self.m}")
        cols = list(self._columns)
        cols[c] = new_mask
        return XorHashFunction(self._n, cols)

    def __eq__(self, other) -> bool:
        if not isinstance(other, XorHashFunction):
            return NotImplemented
        return self._n == other._n and self._columns == other._columns

    def __hash__(self) -> int:
        return hash((self._n, self._columns))

    def __repr__(self) -> str:
        cols = ", ".join(f"{c:#06x}" for c in self._columns)
        return f"XorHashFunction(n={self._n}, m={self.m}, columns=[{cols}])"

    def describe(self) -> str:
        """Human-readable per-index-bit formula, e.g. ``s0 = a0^a12``."""
        lines = []
        for c, col in enumerate(self._columns):
            inputs = [f"a{r}" for r in range(self._n) if (col >> r) & 1]
            rhs = " ^ ".join(inputs) if inputs else "0"
            lines.append(f"s{c} = {rhs}")
        return "\n".join(lines)
