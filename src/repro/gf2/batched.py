"""Batched GF(2) screens for single-column matrix replacements.

The search neighbourhood of Sec. 3.2 replaces one column mask of the
current hash function by each of many candidate masks.  The scalar path
instantiates an :class:`~repro.gf2.hashfn.XorHashFunction` per candidate
and runs a fresh Gaussian elimination for its rank and a fresh subspace
canonicalization for its dedup key — O(candidates x m^2) Python work per
descent step.

This module screens the whole candidate array at once.  The key
observation: with the other ``m - 1`` columns fixed, their RREF basis
``B`` is computed *once*; a candidate mask ``h`` then

* keeps the function full rank iff ``h`` does not reduce to zero
  against ``B`` (and the fixed columns were independent), and
* has the canonical column-space basis ``RREF(B ∪ {h})``, obtainable
  from ``B`` by one reduction plus one back-substitution — no
  elimination from scratch.

Both facts vectorize over a numpy array of candidates: reduction by a
basis vector is a masked XOR, so the rank screen costs ``len(B)``
array passes and the canonical keys a handful more.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.gf2.spaces import _rref_basis

__all__ = [
    "rref_basis",
    "reduce_by_basis",
    "high_bit_index",
    "ColumnReplacementScreen",
]


def rref_basis(vectors: Iterable[int], n: int) -> tuple[int, ...]:
    """Canonical (RREF) basis of ``span(vectors)`` in GF(2)^n.

    Identical to the basis :class:`~repro.gf2.spaces.Subspace` stores,
    sorted by decreasing pivot position.
    """
    return _rref_basis(vectors, n)


def reduce_by_basis(vectors: np.ndarray, basis: Iterable[int]) -> np.ndarray:
    """Reduce each vector against an RREF basis (vectorized).

    Returns a ``uint64`` array: entry ``i`` is ``vectors[i]`` with every
    basis pivot eliminated.  A zero entry means the vector lies in the
    basis' span.
    """
    out = np.asarray(vectors).astype(np.uint64).copy()
    for b in basis:
        pivot = np.uint64(b.bit_length() - 1)
        hit = (out >> pivot) & np.uint64(1) == np.uint64(1)
        out[hit] ^= np.uint64(b)
    return out


def high_bit_index(values: np.ndarray) -> np.ndarray:
    """Index of the highest set bit per element (``-1`` for zero)."""
    values = np.asarray(values).astype(np.uint64)
    out = np.zeros(values.shape, dtype=np.int64)
    tmp = values.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        big = tmp >= np.uint64(1 << shift)
        out[big] += shift
        tmp[big] >>= np.uint64(shift)
    out[values == 0] = -1
    return out


class ColumnReplacementScreen:
    """Rank and canonical-key screens for one column's candidate masks.

    Built once per (current function, column) pair; the fixed columns'
    RREF basis is the only state.  ``full_rank`` and
    ``canonical_bases`` then evaluate whole candidate arrays without
    instantiating any :class:`~repro.gf2.hashfn.XorHashFunction`.
    """

    __slots__ = ("n", "m", "basis", "_fixed_independent")

    def __init__(self, columns: Iterable[int], column_index: int, n: int):
        columns = tuple(int(c) for c in columns)
        if not 0 <= column_index < len(columns):
            raise IndexError(
                f"column {column_index} out of range for m={len(columns)}"
            )
        self.n = int(n)
        self.m = len(columns)
        fixed = tuple(
            col for c, col in enumerate(columns) if c != column_index
        )
        self.basis = _rref_basis(fixed, self.n)
        self._fixed_independent = len(self.basis) == self.m - 1

    def full_rank(self, candidates: np.ndarray) -> np.ndarray:
        """Boolean mask: which candidate masks keep the function full rank.

        Equals ``fn.with_column(c, cand).is_full_rank`` per candidate
        (property-tested), at the cost of ``m - 1`` vectorized XOR
        passes instead of one Gaussian elimination per candidate.
        """
        if not self._fixed_independent:
            return np.zeros(len(np.asarray(candidates)), dtype=bool)
        return reduce_by_basis(candidates, self.basis) != 0

    def canonical_bases(self, candidates: np.ndarray) -> np.ndarray:
        """Array-valued canonical keys: one RREF basis row per candidate.

        Row ``i`` holds the canonical basis of
        ``span(fixed columns ∪ {candidates[i]})`` sorted by decreasing
        pivot, zero-padded at the end — ``(len(candidates), m)`` when
        the fixed columns are independent.  The non-zero prefix of a
        row equals ``Subspace(columns', n).basis`` for the replaced
        column set (and hence identifies the function's null space,
        the dedup invariant of :meth:`XorHashFunction.canonical_key`).
        """
        reduced = reduce_by_basis(candidates, self.basis)
        fixed = np.array(self.basis, dtype=np.uint64)
        rows = np.tile(fixed, (len(reduced), 1))
        pivots = high_bit_index(reduced)
        shift = np.where(pivots >= 0, pivots, 0).astype(np.uint64)
        # Back-substitute the new vector into every fixed basis vector
        # holding its pivot; rank-deficient candidates (pivot -1) leave
        # the fixed basis untouched and contribute a zero entry.
        hit = ((rows >> shift[:, None]) & np.uint64(1) == 1) & (
            pivots >= 0
        )[:, None]
        rows ^= np.where(hit, reduced[:, None], np.uint64(0))
        full = np.concatenate([rows, reduced[:, None]], axis=1)
        # Distinct pivots make value order equal pivot order, so one
        # descending sort restores the canonical basis ordering.
        full = np.sort(full, axis=1)[:, ::-1]
        return np.ascontiguousarray(full)

    def canonical_key_of(self, mask: int) -> tuple:
        """Hashable key of one replacement, equal to the
        :meth:`XorHashFunction.canonical_key` of the replaced function.

        Pure integer arithmetic against the cached fixed basis — used
        by the hill climber for the few cost-ordered candidates it
        actually inspects, while :meth:`canonical_bases` serves whole
        arrays.
        """
        reduced = int(mask)
        for b in self.basis:
            reduced = min(reduced, reduced ^ b)
        if reduced == 0:
            return (self.n, self.basis)
        pivot = 1 << (reduced.bit_length() - 1)
        merged = tuple(
            b ^ reduced if b & pivot else b for b in self.basis
        )
        return (self.n, tuple(sorted(merged + (reduced,), reverse=True)))

    def key_from_row(self, basis_row: np.ndarray) -> tuple:
        """Hashable key from one :meth:`canonical_bases` row."""
        return (self.n, tuple(int(v) for v in basis_row if v))
