"""GF(2) linear algebra substrate for XOR-indexing.

Exports the bit-vector helpers, dense matrices, canonical subspaces,
design-space counting formulas and the central
:class:`~repro.gf2.hashfn.XorHashFunction` class.
"""

from repro.gf2.batched import (
    ColumnReplacementScreen,
    high_bit_index,
    reduce_by_basis,
    rref_basis,
)
from repro.gf2.bitpack import (
    pack_bit_planes,
    pack_bits,
    packed_parity_rows,
    popcount_rows,
    unpack_bits,
    weighted_popcount,
)
from repro.gf2.bitvec import (
    bits_of,
    dot,
    from_bits,
    mask,
    parity,
    parity_table,
    popcount,
)
from repro.gf2.counting import (
    gaussian_binomial,
    num_distinct_null_spaces,
    num_full_rank_matrices,
    num_matrices,
    num_subspaces_total,
)
from repro.gf2.hashfn import XorHashFunction
from repro.gf2.matrix import GF2Matrix
from repro.gf2.polynomial import (
    irreducible_polynomials,
    is_irreducible,
    poly_degree,
    poly_mod,
    poly_mul,
    polynomial_hash_function,
)
from repro.gf2.spaces import Subspace, all_subspace_bases

__all__ = [
    "ColumnReplacementScreen",
    "high_bit_index",
    "reduce_by_basis",
    "rref_basis",
    "pack_bit_planes",
    "pack_bits",
    "packed_parity_rows",
    "popcount_rows",
    "unpack_bits",
    "weighted_popcount",
    "bits_of",
    "dot",
    "from_bits",
    "mask",
    "parity",
    "parity_table",
    "popcount",
    "gaussian_binomial",
    "num_distinct_null_spaces",
    "num_full_rank_matrices",
    "num_matrices",
    "num_subspaces_total",
    "GF2Matrix",
    "Subspace",
    "all_subspace_bases",
    "XorHashFunction",
    "poly_degree",
    "poly_mul",
    "poly_mod",
    "is_irreducible",
    "irreducible_polynomials",
    "polynomial_hash_function",
]
