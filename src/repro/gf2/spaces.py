"""Subspaces of GF(2)^n with canonical bases.

The paper's design-space exploration runs over *null spaces* of hash
matrices rather than over the matrices themselves (Sec. 2): distinct
matrices with equal null spaces produce identical conflict behaviour, so
deduplicating by null space shrinks the search space from ~3.4e38
matrices to ~6.3e19 subspaces for ``n=16, m=8``.

A :class:`Subspace` is stored by its reduced row-echelon basis, which is
unique per subspace, making equality and hashing exact.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from itertools import combinations

import numpy as np

from repro.gf2.bitvec import mask
from repro.gf2.matrix import GF2Matrix

__all__ = ["Subspace", "all_subspace_bases"]


def _rref_basis(vectors: Iterable[int], n: int) -> tuple[int, ...]:
    """Canonical (RREF) basis of the span of ``vectors`` in GF(2)^n."""
    limit = 1 << n
    basis: list[int] = []  # kept sorted by decreasing pivot
    for vec in vectors:
        if vec < 0 or vec >= limit:
            raise ValueError(f"vector {vec:#x} does not fit in {n} bits")
        for b in basis:
            vec = min(vec, vec ^ b)
        if vec:
            basis.append(vec)
            basis.sort(key=lambda v: -v.bit_length())
            # Back-substitute so each pivot appears in exactly one vector.
            for i in range(len(basis)):
                for j in range(len(basis)):
                    if i != j:
                        pivot = 1 << (basis[j].bit_length() - 1)
                        if basis[i] & pivot:
                            basis[i] ^= basis[j]
            basis.sort(key=lambda v: -v.bit_length())
    return tuple(basis)


def all_subspace_bases(n: int, dim: int):
    """Enumerate every ``dim``-dimensional subspace of GF(2)^n once.

    Yields canonical RREF bases as tuples of ints (decreasing pivots).
    The construction mirrors the RREF normal form: choose the pivot
    positions, then fill each basis vector's non-pivot positions below
    its own pivot freely.  The total count is the Gaussian binomial
    ``[n choose dim]_2`` (checked by tests), which explodes quickly —
    practical up to roughly n = 9; used by the optimal-XOR search that
    the paper lists as future work.
    """
    if not 0 <= dim <= n:
        raise ValueError(f"dimension {dim} out of range for ambient {n}")
    if dim == 0:
        yield ()
        return
    for pivots in combinations(reversed(range(n)), dim):
        # pivots are decreasing; vector i owns pivots[i].
        free_positions = [
            [j for j in range(p) if j not in pivots] for p in pivots
        ]
        free_counts = [len(f) for f in free_positions]

        def fill(i: int, prefix: tuple[int, ...]):
            if i == dim:
                yield prefix
                return
            base = 1 << pivots[i]
            for bits in range(1 << free_counts[i]):
                vec = base
                for b, pos in enumerate(free_positions[i]):
                    if (bits >> b) & 1:
                        vec |= 1 << pos
                yield from fill(i + 1, prefix + (vec,))

        yield from fill(0, ())


class Subspace:
    """A linear subspace of GF(2)^n, canonicalized by its RREF basis."""

    __slots__ = ("_basis", "_n")

    def __init__(self, vectors: Iterable[int], n: int):
        self._n = int(n)
        self._basis = _rref_basis(vectors, self._n)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zero(cls, n: int) -> "Subspace":
        """The trivial subspace ``{0}``."""
        return cls([], n)

    @classmethod
    def full(cls, n: int) -> "Subspace":
        """The whole space GF(2)^n."""
        return cls([1 << i for i in range(n)], n)

    @classmethod
    def span_of_units(cls, indices: Iterable[int], n: int) -> "Subspace":
        """``span(e_i : i in indices)`` — used for Eq. (5)'s low-order span."""
        return cls([1 << i for i in indices], n)

    @classmethod
    def random(cls, n: int, dim: int, rng) -> "Subspace":
        """A uniformly random ``dim``-dimensional subspace of GF(2)^n."""
        if not 0 <= dim <= n:
            raise ValueError(f"dimension {dim} out of range for ambient {n}")
        vectors: list[int] = []
        space = cls.zero(n)
        limit = 1 << n
        while space.dim < dim:
            if hasattr(rng, "integers"):
                candidate = int(rng.integers(0, limit))
            else:
                candidate = rng.randrange(limit)
            if not space.contains(candidate):
                vectors.append(candidate)
                space = cls(vectors, n)
        return space

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Ambient dimension."""
        return self._n

    @property
    def dim(self) -> int:
        return len(self._basis)

    @property
    def basis(self) -> tuple[int, ...]:
        """Canonical RREF basis, sorted by decreasing pivot position."""
        return self._basis

    @property
    def pivots(self) -> tuple[int, ...]:
        """Pivot bit positions of the canonical basis (decreasing)."""
        return tuple(v.bit_length() - 1 for v in self._basis)

    def size(self) -> int:
        """Number of vectors in the subspace (``2 ** dim``)."""
        return 1 << self.dim

    # ------------------------------------------------------------------
    # Membership and enumeration
    # ------------------------------------------------------------------

    def contains(self, vec: int) -> bool:
        if vec < 0 or vec >= (1 << self._n):
            raise ValueError(f"vector {vec:#x} does not fit in {self._n} bits")
        for b in self._basis:
            vec = min(vec, vec ^ b)
        return vec == 0

    def __contains__(self, vec: int) -> bool:
        return self.contains(vec)

    def __iter__(self) -> Iterator[int]:
        """Enumerate all ``2**dim`` member vectors (Gray-code order)."""
        value = 0
        yield 0
        for i in range(1, self.size()):
            # Gray code: flip the basis vector indexed by the lowest set
            # bit of i, visiting every combination exactly once.
            value ^= self._basis[(i & -i).bit_length() - 1]
            yield value

    def member_array(self) -> np.ndarray:
        """All ``2**dim`` member vectors as one ``uint64`` array.

        Vectorized doubling over the basis — each basis vector XORs the
        members enumerated so far — so no per-member Python iteration;
        the order differs from :meth:`__iter__`.  Requires ``n <= 64``.
        """
        if self._n > 64:
            raise ValueError(
                f"member_array packs vectors into uint64; ambient {self._n} > 64"
            )
        members = np.zeros(1, dtype=np.uint64)
        for b in self._basis:
            members = np.concatenate([members, members ^ np.uint64(b)])
        return members

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------

    def sum_with(self, other: "Subspace") -> "Subspace":
        """Smallest subspace containing both (``V + W``)."""
        self._check_ambient(other)
        return Subspace(self._basis + other._basis, self._n)

    def intersection(self, other: "Subspace") -> "Subspace":
        """``V ∩ W`` via the Zassenhaus algorithm."""
        self._check_ambient(other)
        n = self._n
        # Rows [v | v] for v in V's basis and [w | 0] for w in W's basis;
        # after elimination, rows with zero left half hold intersection
        # vectors in their right half.
        rows = [(v << n) | v for v in self._basis]
        rows += [w << n for w in other._basis]
        matrix, __ = GF2Matrix(rows, 2 * n).rref()
        low = mask(n)
        inter = [row & low for row in matrix.rows if row and (row >> n) == 0]
        return Subspace(inter, n)

    def orthogonal_complement(self) -> "Subspace":
        """``V^⊥ = { y : parity(v & y) = 0 for all v in V }``.

        For a hash function ``H``, the column space of ``H`` is exactly
        ``N(H)^⊥`` — this is how a matrix is recovered from a null space.
        """
        basis = GF2Matrix(self._basis, self._n).kernel()
        return Subspace(basis, self._n)

    def contains_subspace(self, other: "Subspace") -> bool:
        self._check_ambient(other)
        return all(self.contains(v) for v in other._basis)

    def intersects_trivially(self, other: "Subspace") -> bool:
        """True when ``V ∩ W = {0}``.

        Checked via dimensions: ``dim(V+W) = dim V + dim W``.
        """
        return self.sum_with(other).dim == self.dim + other.dim

    def is_neighbor_of(self, other: "Subspace") -> bool:
        """Paper Sec. 3.2 neighbourhood: equal dimensions differing in
        exactly one — ``dim(V ∩ W) = dim V - 1``."""
        self._check_ambient(other)
        if self.dim != other.dim:
            return False
        return self.intersection(other).dim == self.dim - 1

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _check_ambient(self, other: "Subspace") -> None:
        if self._n != other._n:
            raise ValueError(
                f"ambient dimensions differ: {self._n} vs {other._n}"
            )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Subspace):
            return NotImplemented
        return self._n == other._n and self._basis == other._basis

    def __hash__(self) -> int:
        return hash((self._n, self._basis))

    def __repr__(self) -> str:
        return (
            f"Subspace(n={self._n}, dim={self.dim}, "
            f"basis={[bin(v) for v in self._basis]})"
        )
