"""Conflict-miss estimation from a profile — the paper's Eq. 4.

``misses(H) = sum over v in N(H) of misses(v)``

Two evaluation strategies with identical results:

* *null-space side*: enumerate the ``2^(n-m)`` vectors of ``N(H)`` and
  sum their histogram entries in one fancy-indexed gather — cost
  ``O(2^(n-m))``, cheap when the rank is close to ``n``;
* *support side*: test every profiled vector for null-space membership
  (``parity(v & h_c) == 0`` for all columns) — cost ``O(m x support)``,
  cheap when the profile support is smaller than the null space.

Neither side is width-limited: narrow windows use the 16-bit parity
lookup table, wider ones the :func:`repro.gf2.bitvec.parity_array`
kernel (``np.bitwise_count`` or a packed-byte-table fallback).
:func:`estimate_misses` picks the cheaper side by comparing the two
cost terms.

:class:`MissEstimator` packages the support arrays once per profile and
adds the batched single-column evaluation the hill climber relies on.
"""

from __future__ import annotations

import numpy as np

from repro.gf2.bitpack import (
    pack_bit_planes,
    packed_parity_rows,
    unpack_bits,
    weighted_popcount,
)
from repro.gf2.bitvec import parity_array, parity_table
from repro.gf2.hashfn import XorHashFunction
from repro.profiling.conflict_profile import ConflictProfile

__all__ = [
    "estimate_misses",
    "estimate_misses_nullspace",
    "estimate_misses_support",
    "MissEstimator",
]

#: Width of :func:`repro.gf2.bitvec.parity_table`.  At or below it the
#: support-side paths use the value-indexed table gather (one lookup
#: per element); above it they switch to the wide parity kernel.  It
#: is a strategy threshold, not a limit.
_PARITY_TABLE_BITS = 16


def _support_dtype(n: int) -> np.dtype:
    return np.dtype(np.uint32 if n <= 32 else np.uint64)


def estimate_misses_nullspace(
    profile: ConflictProfile, hash_function: XorHashFunction
) -> int:
    """Eq. 4 by enumerating the null space.

    One vectorized enumeration of the ``2^(n - rank)`` null-space
    members plus one fancy-indexed gather into the histogram.
    """
    _check(profile, hash_function)
    members = hash_function.null_space().member_array()
    return int(profile.counts[members.astype(np.intp)].sum())


def estimate_misses_support(
    profile: ConflictProfile, hash_function: XorHashFunction
) -> int:
    """Eq. 4 by scanning the profile support.

    One parity pass per column over the non-zero histogram entries —
    ``O(m x support)`` for any window width ``n``.
    """
    _check(profile, hash_function)
    vectors, weights = profile.support()
    if len(vectors) == 0:
        return 0
    alive = _members_of_nullspace(
        vectors.astype(_support_dtype(profile.n)),
        hash_function.columns,
        profile.n,
    )
    return int(weights[alive].sum())


def estimate_misses(
    profile: ConflictProfile, hash_function: XorHashFunction
) -> int:
    """Eq. 4, choosing the cheaper evaluation side by cost model.

    The null-space side gathers ``2^(n - rank)`` histogram entries;
    the support side runs ``m`` parity passes over the profile
    support.  Both are exact, so the routing is purely a performance
    choice.
    """
    _check(profile, hash_function)
    null_size = 1 << (hash_function.n - hash_function.rank)
    support_cost = len(hash_function.columns) * profile.num_distinct_vectors
    if null_size <= support_cost:
        return estimate_misses_nullspace(profile, hash_function)
    return estimate_misses_support(profile, hash_function)


def _check(profile: ConflictProfile, hash_function: XorHashFunction) -> None:
    if profile.n != hash_function.n:
        raise ValueError(
            f"profile window ({profile.n} bits) does not match hash function "
            f"({hash_function.n} bits)"
        )


def _members_of_nullspace(
    vectors: np.ndarray, columns: tuple[int, ...], n: int
) -> np.ndarray:
    """Boolean mask of ``vectors`` annihilated by every column mask."""
    alive = np.ones(len(vectors), dtype=bool)
    if n <= _PARITY_TABLE_BITS:
        table = parity_table()
        for col in columns:
            np.logical_and(
                alive, table[vectors & vectors.dtype.type(col)] == 0, out=alive
            )
    else:
        for col in columns:
            np.logical_and(
                alive,
                parity_array(vectors & vectors.dtype.type(col)) == 0,
                out=alive,
            )
    return alive


class MissEstimator:
    """Fast repeated Eq. 4 evaluation against one profile.

    The hill climber asks two questions many times per step:

    * the cost of a full column set (:meth:`cost`) — one parity pass
      per column over the support;
    * the costs of replacing a single column by each of many candidate
      masks while the others stay fixed
      (:meth:`costs_with_column_replaced`) — the support is first
      reduced to vectors annihilated by the *fixed* columns, then each
      candidate touches only that residue via one 2-D parity gather,
      ``O(candidates x residue)`` overall;
    * the costs of a whole search neighbourhood — every column times
      every candidate mask, optionally for a whole front of current
      functions at once (:meth:`costs_for_moves` /
      :meth:`costs_for_moves_front`) — in one shared 2-D parity
      gather.

    Works for any window width: windows beyond the 16-bit parity table
    evaluate through the bit-packed plane kernels of
    :mod:`repro.gf2.bitpack` (64 support vectors per machine word),
    falling back to :func:`repro.gf2.bitvec.parity_array` for workloads
    too small to amortize the packing transpose.
    """

    #: Bound on ``candidates x residue-vectors`` elements materialized at
    #: once by the batched evaluation (the int64 product stays ~32 MB).
    CHUNK_ELEMENTS = 1 << 22

    #: Smallest ``candidates x residue-vectors`` workload the wide-window
    #: paths bit-pack.  Below it the per-call :func:`pack_bit_planes`
    #: transpose dominates and the elementwise parity kernel wins.
    PACKED_MIN_ELEMENTS = 1 << 12

    def __init__(self, profile: ConflictProfile):
        self.profile = profile
        self.n = profile.n
        vectors, weights = profile.support()
        self._vectors = vectors.astype(_support_dtype(profile.n))
        self._weights = weights.astype(np.int64)
        self._table = parity_table() if profile.n <= _PARITY_TABLE_BITS else None
        # Bit-plane packing of the full support, built on first use by
        # the wide-window (n > 16) paths; narrow windows never pay for it.
        self._planes: np.ndarray | None = None
        self.evaluations = 0
        # Parity rows over the support keyed by column mask (~64 MB cap;
        # a search only ever touches a few hundred distinct masks).
        self._parity_rows: dict[int, np.ndarray] = {}
        self._parity_row_limit = max(64, (64 << 20) // max(len(vectors), 1))

    @property
    def support_size(self) -> int:
        return len(self._vectors)

    def cost(self, columns: tuple[int, ...]) -> int:
        """Estimated conflict misses for a function with these columns."""
        alive = self._alive(columns)
        self.evaluations += 1
        return int(self._weights[alive].sum())

    def cost_of(self, hash_function: XorHashFunction) -> int:
        return self.cost(hash_function.columns)

    def costs_with_column_replaced(
        self, columns: tuple[int, ...], column_index: int, candidates: np.ndarray
    ) -> np.ndarray:
        """Cost of ``columns`` with ``columns[column_index]`` replaced by
        each candidate mask; returns an ``int64`` array aligned with
        ``candidates``."""
        fixed = tuple(
            col for c, col in enumerate(columns) if c != column_index
        )
        alive = self._alive(fixed)
        vectors = self._vectors[alive]
        weights = self._weights[alive]
        candidates = np.asarray(candidates, dtype=vectors.dtype)
        out = np.zeros(len(candidates), dtype=np.int64)
        if len(vectors):
            # A vector survives a candidate column when the parity is 0,
            # so its weight is the residue total minus the odd-parity
            # weight summed by the routed batch kernel.
            total = int(weights.sum())
            out[:] = total - self._odd_weights(candidates, vectors, weights)
        self.evaluations += len(candidates)
        return out

    def costs_for_moves(
        self,
        columns: tuple[int, ...],
        candidates: np.ndarray,
        move_columns: np.ndarray,
    ) -> np.ndarray:
        """Score an entire search neighbourhood in one pass.

        ``candidates[i]`` replaces column ``move_columns[i]`` of
        ``columns``; the return value is an ``int64`` array of Eq. 4
        costs aligned with ``candidates``.  Exactly equals calling
        :meth:`costs_with_column_replaced` per column (property-tested)
        but runs ``m`` parity passes over the support instead of
        ``m * (m - 1)`` and one shared 2-D candidate gather instead of
        ``m`` separate ones — the kernel behind the batched hill
        climber in :mod:`repro.search`.
        """
        candidates = np.asarray(candidates)
        return self.costs_for_moves_front(
            (tuple(columns),),
            candidates,
            np.zeros(len(candidates), dtype=np.intp),
            move_columns,
        )

    def costs_for_moves_front(
        self,
        column_sets,
        candidates: np.ndarray,
        owners: np.ndarray,
        move_columns: np.ndarray,
    ) -> np.ndarray:
        """:meth:`costs_for_moves` for a lockstep front of functions.

        ``column_sets[k]`` is the current column tuple of front member
        ``k`` (all members share ``m``); candidate ``i`` replaces
        column ``move_columns[i]`` of member ``owners[i]``.  One parity
        matrix over the support (``len(column_sets) x m`` passes) and
        one shared chunked 2-D candidate gather serve every member —
        this is what lets ``hill_climb_front`` advance all restarts
        simultaneously.
        """
        column_sets = [tuple(cols) for cols in column_sets]
        if not column_sets:
            raise ValueError("costs_for_moves_front needs at least one column set")
        m = len(column_sets[0])
        if any(len(cols) != m for cols in column_sets):
            raise ValueError("all front members must share the same m")
        vectors = self._vectors
        candidates = np.asarray(candidates, dtype=vectors.dtype)
        owners = np.asarray(owners, dtype=np.intp)
        move_columns = np.asarray(move_columns, dtype=np.intp)
        if not (len(candidates) == len(owners) == len(move_columns)):
            raise ValueError("candidates, owners and move_columns must align")
        out = np.zeros(len(candidates), dtype=np.int64)
        self.evaluations += len(candidates)
        if len(candidates) == 0 or len(vectors) == 0:
            return out
        # Parity of every support vector under every current column of
        # every member.  Rows are memoized per column *mask*: a descent
        # step changes one column and front members share most masks,
        # so nearly every row is a dict hit instead of a parity pass —
        # the scalar path recomputes m*(m-1) passes per step instead.
        parities = np.empty((len(column_sets), m, len(vectors)), dtype=np.uint8)
        for k, cols in enumerate(column_sets):
            for c, col in enumerate(cols):
                parities[k, c] = self._parity_row(col)
        odd_counts = parities.sum(axis=1, dtype=np.int64)
        # One residue gather per (member, column) group: vectors
        # annihilated by every *other* column of that member — the same
        # residue the per-column path uses, read off the shared parity
        # matrix instead of recomputed.
        row_ids = owners * m + move_columns
        for row_id in np.unique(row_ids):
            k, c = divmod(int(row_id), m)
            alive = (odd_counts[k] - parities[k, c]) == 0
            sub_vectors = vectors[alive]
            if len(sub_vectors) == 0:
                continue  # no surviving vectors: every cost stays 0
            sub_weights = self._weights[alive]
            total = int(sub_weights.sum())
            mine = np.nonzero(row_ids == row_id)[0]
            group = candidates[mine]
            out[mine] = total - self._odd_weights(group, sub_vectors, sub_weights)
        return out

    def annihilated_mask(self, columns) -> np.ndarray:
        """Boolean mask over the support: vectors with even parity under
        *every* given column mask.

        The support-side membership test of Eq. 4 exposed for partial
        column assignments — exact searches
        (:mod:`repro.search.branch_bound`) intersect these residues to
        bound every completion of a prefix.  Rows come from the memoized
        per-mask parity cache, so repeated prefixes of the same columns
        cost one dictionary hit per mask.
        """
        alive = np.ones(len(self._vectors), dtype=bool)
        for col in columns:
            np.logical_and(alive, self._parity_row(int(col)) == 0, out=alive)
        return alive

    def weight_within(self, alive: np.ndarray) -> int:
        """Total profiled conflict weight of one support subset."""
        return int(self._weights[alive].sum())

    def even_weights_within(
        self, candidates: np.ndarray, alive: np.ndarray
    ) -> np.ndarray:
        """Surviving (even-parity) weight within ``alive`` per candidate.

        ``out[i]`` is the weight of support vectors in ``alive`` with
        even parity under ``candidates[i]`` — the batched one-more-column
        evaluation behind branch-and-bound child bounds, routed through
        the same chunked/bit-packed kernel as the neighbourhood paths.
        Counts one evaluation per candidate.
        """
        candidates = np.asarray(candidates, dtype=self._vectors.dtype)
        self.evaluations += len(candidates)
        out = np.zeros(len(candidates), dtype=np.int64)
        if len(candidates) == 0:
            return out
        vectors = self._vectors[alive]
        if len(vectors) == 0:
            return out
        weights = self._weights[alive]
        total = int(weights.sum())
        out[:] = total - self._odd_weights(candidates, vectors, weights)
        return out

    def complete_group_minima(
        self,
        candidates: np.ndarray,
        alive: np.ndarray,
        shift: int,
        group_size: int,
    ) -> np.ndarray:
        """Per candidate: sum of min weights over *complete* high-bit groups.

        Restricts ``alive`` to vectors with even parity under the
        candidate mask (mask ``0`` keeps the residue unrestricted),
        groups the survivors by their bits above ``shift``, and sums the
        minimum weight of every group holding exactly ``group_size``
        members.  This is the permutation-family suffix bound of
        :mod:`repro.search.branch_bound`: when each group member is one
        distinct completion of the free index bits, a complete group is
        hit by *every* remaining assignment, so its cheapest member is
        an admissible contribution.  Counts one evaluation per
        candidate.
        """
        candidates = np.asarray(candidates, dtype=self._vectors.dtype)
        self.evaluations += len(candidates)
        out = np.zeros(len(candidates), dtype=np.int64)
        if len(candidates) == 0 or not alive.any():
            return out
        shift = np.uint64(shift)
        groups_all = (self._vectors >> shift).astype(np.int64)
        n_groups = int(groups_all.max()) + 1
        # One min-per-group pass over the *given* residue: a restricted
        # residue is a subset, so its group minima only rise — using
        # the unrestricted minima for every candidate keeps the bound
        # admissible while the per-candidate work drops to a bincount.
        base_groups = groups_all[alive]
        minima = np.full(n_groups, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(minima, base_groups, self._weights[alive])
        for i, mask in enumerate(candidates):
            if int(mask):
                child = alive & (self._parity_row(int(mask)) == 0)
                groups = groups_all[child]
            else:
                groups = base_groups
            if len(groups) == 0:
                continue
            counts = np.bincount(groups, minlength=n_groups)
            out[i] = int(minima[counts == group_size].sum())
        return out

    def _odd_weights(
        self, candidates: np.ndarray, vectors: np.ndarray, weights: np.ndarray
    ) -> np.ndarray:
        """Weight of odd-parity vectors under each candidate mask.

        The batch kernel behind both neighbourhood evaluators.  Narrow
        windows (n <= 16) run the 2-D parity-table gather; wide windows
        bit-pack the residue once (:func:`pack_bit_planes`) and evaluate
        each candidate as plane XORs plus one weighted popcount —
        unless the workload is too small to amortize the packing
        transpose (:attr:`PACKED_MIN_ELEMENTS`), where the elementwise
        :func:`parity_array` kernel stays cheaper.  Both routes are
        exact, so the choice is purely a performance one.
        """
        out = np.empty(len(candidates), dtype=np.int64)
        if len(candidates) == 0:
            return out
        rows = max(1, self.CHUNK_ELEMENTS // max(len(vectors), 1))
        if (
            self._table is None
            and len(candidates) * len(vectors) >= self.PACKED_MIN_ELEMENTS
        ):
            planes = pack_bit_planes(vectors, self.n)
            for lo in range(0, len(candidates), rows):
                packed = packed_parity_rows(planes, candidates[lo : lo + rows])
                out[lo : lo + rows] = weighted_popcount(
                    packed, weights, len(vectors)
                )
            return out
        for lo in range(0, len(candidates), rows):
            chunk = candidates[lo : lo + rows]
            odd = self._parity(chunk[:, None] & vectors[None, :])
            out[lo : lo + rows] = odd.astype(np.int64) @ weights
        return out

    def _parity(self, masked: np.ndarray) -> np.ndarray:
        """Elementwise parity by the table (n <= 16) or the wide kernel."""
        if self._table is not None:
            return self._table[masked]
        return parity_array(masked)

    def _parity_row(self, column: int) -> np.ndarray:
        """Memoized parity of the whole support under one column mask.

        Wide windows read the row off the bit-plane packing of the
        support — ``popcount(column)`` word-wide XOR passes plus one
        unpack — instead of a full-width masked parity pass.
        """
        row = self._parity_rows.get(column)
        if row is None:
            if len(self._parity_rows) >= self._parity_row_limit:
                self._parity_rows.clear()
            if self._table is None and len(self._vectors):
                packed = packed_parity_rows(
                    self._support_planes(),
                    np.asarray([column], dtype=np.uint64),
                )
                row = unpack_bits(packed, len(self._vectors))[0]
            else:
                row = self._parity(
                    self._vectors & self._vectors.dtype.type(column)
                )
            self._parity_rows[column] = row
        return row

    def _support_planes(self) -> np.ndarray:
        """Bit-plane packing of the full support, built once on demand."""
        if self._planes is None:
            self._planes = pack_bit_planes(self._vectors, self.n)
        return self._planes

    def _costs_with_column_replaced_loop(
        self, columns: tuple[int, ...], column_index: int, candidates: np.ndarray
    ) -> np.ndarray:
        """Per-candidate reference loop, kept as the oracle for property
        tests of the batched 2-D evaluation above."""
        fixed = tuple(
            col for c, col in enumerate(columns) if c != column_index
        )
        alive = self._alive(fixed)
        vectors = self._vectors[alive]
        weights = self._weights[alive]
        candidates = np.asarray(candidates, dtype=vectors.dtype)
        out = np.empty(len(candidates), dtype=np.int64)
        for i, cand in enumerate(candidates):
            zero_parity = _members_of_nullspace(vectors, (int(cand),), self.n)
            out[i] = weights[zero_parity].sum()
        return out

    def _alive(self, columns: tuple[int, ...]) -> np.ndarray:
        """Support vectors annihilated by every given column."""
        return _members_of_nullspace(self._vectors, columns, self.n)
