"""Conflict-miss estimation from a profile — the paper's Eq. 4.

``misses(H) = sum over v in N(H) of misses(v)``

Two evaluation strategies with identical results:

* *null-space side*: enumerate the ``2^(n-m)`` vectors of ``N(H)`` and
  sum their histogram entries in one fancy-indexed gather — cost
  ``O(2^(n-m))``, cheap when the rank is close to ``n``;
* *support side*: test every profiled vector for null-space membership
  (``parity(v & h_c) == 0`` for all columns) — cost ``O(m x support)``,
  cheap when the profile support is smaller than the null space.

Neither side is width-limited: narrow windows use the 16-bit parity
lookup table, wider ones the :func:`repro.gf2.bitvec.parity_array`
kernel (``np.bitwise_count`` or a packed-byte-table fallback).
:func:`estimate_misses` picks the cheaper side by comparing the two
cost terms.

:class:`MissEstimator` packages the support arrays once per profile and
adds the batched single-column evaluation the hill climber relies on.
"""

from __future__ import annotations

import numpy as np

from repro.gf2.bitvec import parity_array, parity_table
from repro.gf2.hashfn import XorHashFunction
from repro.profiling.conflict_profile import ConflictProfile

__all__ = [
    "estimate_misses",
    "estimate_misses_nullspace",
    "estimate_misses_support",
    "MissEstimator",
]

#: Width of :func:`repro.gf2.bitvec.parity_table`.  At or below it the
#: support-side paths use the value-indexed table gather (one lookup
#: per element); above it they switch to the wide parity kernel.  It
#: is a strategy threshold, not a limit.
_PARITY_TABLE_BITS = 16


def _support_dtype(n: int) -> np.dtype:
    return np.dtype(np.uint32 if n <= 32 else np.uint64)


def estimate_misses_nullspace(
    profile: ConflictProfile, hash_function: XorHashFunction
) -> int:
    """Eq. 4 by enumerating the null space.

    One vectorized enumeration of the ``2^(n - rank)`` null-space
    members plus one fancy-indexed gather into the histogram.
    """
    _check(profile, hash_function)
    members = hash_function.null_space().member_array()
    return int(profile.counts[members.astype(np.intp)].sum())


def estimate_misses_support(
    profile: ConflictProfile, hash_function: XorHashFunction
) -> int:
    """Eq. 4 by scanning the profile support.

    One parity pass per column over the non-zero histogram entries —
    ``O(m x support)`` for any window width ``n``.
    """
    _check(profile, hash_function)
    vectors, weights = profile.support()
    if len(vectors) == 0:
        return 0
    alive = _members_of_nullspace(
        vectors.astype(_support_dtype(profile.n)),
        hash_function.columns,
        profile.n,
    )
    return int(weights[alive].sum())


def estimate_misses(
    profile: ConflictProfile, hash_function: XorHashFunction
) -> int:
    """Eq. 4, choosing the cheaper evaluation side by cost model.

    The null-space side gathers ``2^(n - rank)`` histogram entries;
    the support side runs ``m`` parity passes over the profile
    support.  Both are exact, so the routing is purely a performance
    choice.
    """
    _check(profile, hash_function)
    null_size = 1 << (hash_function.n - hash_function.rank)
    support_cost = len(hash_function.columns) * profile.num_distinct_vectors
    if null_size <= support_cost:
        return estimate_misses_nullspace(profile, hash_function)
    return estimate_misses_support(profile, hash_function)


def _check(profile: ConflictProfile, hash_function: XorHashFunction) -> None:
    if profile.n != hash_function.n:
        raise ValueError(
            f"profile window ({profile.n} bits) does not match hash function "
            f"({hash_function.n} bits)"
        )


def _members_of_nullspace(
    vectors: np.ndarray, columns: tuple[int, ...], n: int
) -> np.ndarray:
    """Boolean mask of ``vectors`` annihilated by every column mask."""
    alive = np.ones(len(vectors), dtype=bool)
    if n <= _PARITY_TABLE_BITS:
        table = parity_table()
        for col in columns:
            np.logical_and(
                alive, table[vectors & vectors.dtype.type(col)] == 0, out=alive
            )
    else:
        for col in columns:
            np.logical_and(
                alive,
                parity_array(vectors & vectors.dtype.type(col)) == 0,
                out=alive,
            )
    return alive


class MissEstimator:
    """Fast repeated Eq. 4 evaluation against one profile.

    The hill climber asks two questions many times per step:

    * the cost of a full column set (:meth:`cost`) — one parity pass
      per column over the support;
    * the costs of replacing a single column by each of many candidate
      masks while the others stay fixed
      (:meth:`costs_with_column_replaced`) — the support is first
      reduced to vectors annihilated by the *fixed* columns, then each
      candidate touches only that residue via one 2-D parity gather,
      ``O(candidates x residue)`` overall.

    Works for any window width: windows beyond the 16-bit parity table
    evaluate through :func:`repro.gf2.bitvec.parity_array`.
    """

    #: Bound on ``candidates x residue-vectors`` elements materialized at
    #: once by the batched evaluation (the int64 product stays ~32 MB).
    CHUNK_ELEMENTS = 1 << 22

    def __init__(self, profile: ConflictProfile):
        self.profile = profile
        self.n = profile.n
        vectors, weights = profile.support()
        self._vectors = vectors.astype(_support_dtype(profile.n))
        self._weights = weights.astype(np.int64)
        self._table = parity_table() if profile.n <= _PARITY_TABLE_BITS else None
        self.evaluations = 0

    @property
    def support_size(self) -> int:
        return len(self._vectors)

    def cost(self, columns: tuple[int, ...]) -> int:
        """Estimated conflict misses for a function with these columns."""
        alive = self._alive(columns)
        self.evaluations += 1
        return int(self._weights[alive].sum())

    def cost_of(self, hash_function: XorHashFunction) -> int:
        return self.cost(hash_function.columns)

    def costs_with_column_replaced(
        self, columns: tuple[int, ...], column_index: int, candidates: np.ndarray
    ) -> np.ndarray:
        """Cost of ``columns`` with ``columns[column_index]`` replaced by
        each candidate mask; returns an ``int64`` array aligned with
        ``candidates``."""
        fixed = tuple(
            col for c, col in enumerate(columns) if c != column_index
        )
        alive = self._alive(fixed)
        vectors = self._vectors[alive]
        weights = self._weights[alive]
        candidates = np.asarray(candidates, dtype=vectors.dtype)
        out = np.zeros(len(candidates), dtype=np.int64)
        if len(vectors):
            # One 2-D parity gather per chunk: parity of every
            # (candidate, residue-vector) pair at once.  A vector
            # survives a candidate column when the parity is 0, so its
            # weight is the residue total minus the odd-parity weight.
            total = int(weights.sum())
            rows = max(1, self.CHUNK_ELEMENTS // len(vectors))
            table = self._table
            for lo in range(0, len(candidates), rows):
                chunk = candidates[lo : lo + rows]
                masked = chunk[:, None] & vectors[None, :]
                odd = table[masked] if table is not None else parity_array(masked)
                out[lo : lo + rows] = total - odd.astype(np.int64) @ weights
        self.evaluations += len(candidates)
        return out

    def _costs_with_column_replaced_loop(
        self, columns: tuple[int, ...], column_index: int, candidates: np.ndarray
    ) -> np.ndarray:
        """Per-candidate reference loop, kept as the oracle for property
        tests of the batched 2-D evaluation above."""
        fixed = tuple(
            col for c, col in enumerate(columns) if c != column_index
        )
        alive = self._alive(fixed)
        vectors = self._vectors[alive]
        weights = self._weights[alive]
        candidates = np.asarray(candidates, dtype=vectors.dtype)
        out = np.empty(len(candidates), dtype=np.int64)
        for i, cand in enumerate(candidates):
            zero_parity = _members_of_nullspace(vectors, (int(cand),), self.n)
            out[i] = weights[zero_parity].sum()
        return out

    def _alive(self, columns: tuple[int, ...]) -> np.ndarray:
        """Support vectors annihilated by every given column."""
        return _members_of_nullspace(self._vectors, columns, self.n)
