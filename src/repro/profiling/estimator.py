"""Conflict-miss estimation from a profile — the paper's Eq. 4.

``misses(H) = sum over v in N(H) of misses(v)``

Two evaluation strategies with identical results:

* *null-space side*: enumerate the ``2^(n-m)`` vectors of ``N(H)`` and
  sum their histogram entries — cheap when ``n - m`` is small;
* *support side*: test every profiled vector for null-space membership
  (``parity(v & h_c) == 0`` for all columns) — cheap when the profile
  support is smaller than the null space.

:class:`MissEstimator` packages the support arrays once per profile and
adds the batched single-column evaluation the hill climber relies on.
"""

from __future__ import annotations

import numpy as np

from repro.gf2.bitvec import parity_table
from repro.gf2.hashfn import XorHashFunction
from repro.profiling.conflict_profile import ConflictProfile

__all__ = [
    "estimate_misses",
    "estimate_misses_nullspace",
    "estimate_misses_support",
    "MissEstimator",
]


def estimate_misses_nullspace(
    profile: ConflictProfile, hash_function: XorHashFunction
) -> int:
    """Eq. 4 by enumerating the null space."""
    _check(profile, hash_function)
    counts = profile.counts
    return int(sum(int(counts[v]) for v in hash_function.null_space()))


def estimate_misses_support(
    profile: ConflictProfile, hash_function: XorHashFunction
) -> int:
    """Eq. 4 by scanning the profile support."""
    _check(profile, hash_function)
    _check_table_width(profile.n)
    vectors, weights = profile.support()
    if len(vectors) == 0:
        return 0
    table = parity_table()
    alive = np.ones(len(vectors), dtype=bool)
    small = vectors.astype(np.uint32)
    for col in hash_function.columns:
        np.logical_and(alive, table[small & np.uint32(col)] == 0, out=alive)
    return int(weights[alive].sum())


def estimate_misses(
    profile: ConflictProfile, hash_function: XorHashFunction
) -> int:
    """Eq. 4, choosing the cheaper evaluation side automatically."""
    _check(profile, hash_function)
    null_size = 1 << (hash_function.n - hash_function.rank)
    if null_size <= profile.num_distinct_vectors or profile.n > _PARITY_TABLE_BITS:
        return estimate_misses_nullspace(profile, hash_function)
    return estimate_misses_support(profile, hash_function)


#: Width of :func:`repro.gf2.bitvec.parity_table`, the real limit of the
#: table-based (support-side) evaluation.  The null-space side has no
#: width limit.
_PARITY_TABLE_BITS = 16


def _check(profile: ConflictProfile, hash_function: XorHashFunction) -> None:
    if profile.n != hash_function.n:
        raise ValueError(
            f"profile window ({profile.n} bits) does not match hash function "
            f"({hash_function.n} bits)"
        )


def _check_table_width(n: int) -> None:
    if n > _PARITY_TABLE_BITS:
        raise ValueError(
            f"support-side estimation uses the {_PARITY_TABLE_BITS}-bit parity "
            f"lookup table; a {n}-bit window exceeds it — use the null-space "
            "side (estimate_misses_nullspace) instead"
        )


class MissEstimator:
    """Fast repeated Eq. 4 evaluation against one profile.

    The hill climber asks two questions many times per step:

    * the cost of a full column set (:meth:`cost`);
    * the costs of replacing a single column by each of many candidate
      masks while the others stay fixed
      (:meth:`costs_with_column_replaced`) — the support is first
      reduced to vectors annihilated by the *fixed* columns, then each
      candidate touches only that residue.
    """

    #: Bound on ``candidates x residue-vectors`` elements materialized at
    #: once by the batched evaluation (the int64 product stays ~32 MB).
    CHUNK_ELEMENTS = 1 << 22

    def __init__(self, profile: ConflictProfile):
        _check_table_width(profile.n)
        self.profile = profile
        self.n = profile.n
        vectors, weights = profile.support()
        self._vectors = vectors.astype(np.uint32)
        self._weights = weights.astype(np.int64)
        self._table = parity_table()
        self.evaluations = 0

    @property
    def support_size(self) -> int:
        return len(self._vectors)

    def cost(self, columns: tuple[int, ...]) -> int:
        """Estimated conflict misses for a function with these columns."""
        alive = self._alive(columns)
        self.evaluations += 1
        return int(self._weights[alive].sum())

    def cost_of(self, hash_function: XorHashFunction) -> int:
        return self.cost(hash_function.columns)

    def costs_with_column_replaced(
        self, columns: tuple[int, ...], column_index: int, candidates: np.ndarray
    ) -> np.ndarray:
        """Cost of ``columns`` with ``columns[column_index]`` replaced by
        each candidate mask; returns an ``int64`` array aligned with
        ``candidates``."""
        fixed = tuple(
            col for c, col in enumerate(columns) if c != column_index
        )
        alive = self._alive(fixed)
        vectors = self._vectors[alive]
        weights = self._weights[alive]
        candidates = np.asarray(candidates, dtype=np.uint32)
        out = np.zeros(len(candidates), dtype=np.int64)
        if len(vectors):
            # One 2-D gather per chunk: parity of every (candidate,
            # residue-vector) pair at once.  A vector survives a
            # candidate column when the parity is 0, so its weight is
            # the residue total minus the odd-parity weight.
            total = int(weights.sum())
            rows = max(1, self.CHUNK_ELEMENTS // len(vectors))
            table = self._table
            for lo in range(0, len(candidates), rows):
                chunk = candidates[lo : lo + rows]
                odd = table[chunk[:, None] & vectors[None, :]]
                out[lo : lo + rows] = total - odd.astype(np.int64) @ weights
        self.evaluations += len(candidates)
        return out

    def _costs_with_column_replaced_loop(
        self, columns: tuple[int, ...], column_index: int, candidates: np.ndarray
    ) -> np.ndarray:
        """Per-candidate reference loop, kept as the oracle for property
        tests of the batched 2-D evaluation above."""
        fixed = tuple(
            col for c, col in enumerate(columns) if c != column_index
        )
        alive = self._alive(fixed)
        vectors = self._vectors[alive]
        weights = self._weights[alive]
        candidates = np.asarray(candidates, dtype=np.uint32)
        out = np.empty(len(candidates), dtype=np.int64)
        table = self._table
        for i, cand in enumerate(candidates):
            zero_parity = table[vectors & cand] == 0
            out[i] = weights[zero_parity].sum()
        return out

    def _alive(self, columns: tuple[int, ...]) -> np.ndarray:
        """Support vectors annihilated by every given column."""
        alive = np.ones(len(self._vectors), dtype=bool)
        table = self._table
        vectors = self._vectors
        for col in columns:
            np.logical_and(alive, table[vectors & np.uint32(col)] == 0, out=alive)
        return alive
