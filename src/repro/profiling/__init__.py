"""Profiling substrate: the paper's Fig. 1 pass and Eq. 4 estimator."""

from repro.profiling.conflict_profile import (
    ConflictProfile,
    profile_blocks,
    profile_blocks_reference,
    profile_blocks_slotted,
    profile_trace,
)
from repro.profiling.estimator import (
    MissEstimator,
    estimate_misses,
    estimate_misses_nullspace,
    estimate_misses_support,
)
from repro.profiling.lru_stack import LRUStack
from repro.profiling.reuse import (
    FenwickTree,
    reuse_distance_histogram,
    reuse_distances,
)
from repro.profiling.sampling import (
    SamplingReport,
    profile_blocks_sampled,
    sampling_quality,
)
from repro.profiling.sharded import (
    ShardedProfileResult,
    ShardPlan,
    profile_blocks_sharded,
    profile_trace_sharded,
    run_sharded_profile,
)

__all__ = [
    "ConflictProfile",
    "profile_blocks",
    "profile_blocks_reference",
    "profile_blocks_slotted",
    "profile_trace",
    "MissEstimator",
    "estimate_misses",
    "estimate_misses_nullspace",
    "estimate_misses_support",
    "LRUStack",
    "FenwickTree",
    "reuse_distances",
    "reuse_distance_histogram",
    "SamplingReport",
    "profile_blocks_sampled",
    "sampling_quality",
    "ShardPlan",
    "ShardedProfileResult",
    "profile_blocks_sharded",
    "profile_trace_sharded",
    "run_sharded_profile",
]
