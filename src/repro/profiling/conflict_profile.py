"""Conflict-vector profiling — the paper's Fig. 1 algorithm.

A conflict between blocks ``x`` and ``y`` is only possible when
``v = x ^ y`` lies in the hash function's null space (Eq. 2), so the
number of conflict misses of *any* function ``H`` can be estimated from
a single trace pass that histograms the vectors ``x ^ y`` between each
access and the intervening accesses (Eq. 4):

    misses(H) ~= sum over v in N(H) of misses(v)

The profiler filters misses no indexing change can fix: compulsory
misses (first touches) and capacity misses (reuse distance of at least
the cache capacity — such accesses miss even in a fully-associative LRU
cache of the same size).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.gf2.bitvec import mask
from repro.profiling.lru_stack import LRUStack
from repro.trace.trace import Trace

__all__ = ["ConflictProfile", "profile_blocks", "profile_trace"]

_FLUSH_THRESHOLD = 1 << 22  # buffered conflict vectors before a bincount flush


@dataclass(frozen=True)
class ConflictProfile:
    """Histogram of conflict vectors over the hashed address window.

    ``counts[v]`` is the number of (access, intervening block) pairs
    whose XOR, truncated to ``n`` bits, equals ``v`` — the paper's
    ``misses(v)``.
    """

    n: int
    counts: np.ndarray
    compulsory: int = 0
    capacity: int = 0
    accesses: int = 0
    #: Pairs of distinct blocks equal in all hashed bits.  They conflict
    #: under *every* n-bit hash function (0 is in every null space), so
    #: they are an unavoidable constant excluded from ``counts``.
    beyond_window: int = 0

    def __post_init__(self):
        counts = np.ascontiguousarray(self.counts, dtype=np.int64)
        if counts.shape != (1 << self.n,):
            raise ValueError(
                f"counts must have shape ({1 << self.n},), got {counts.shape}"
            )
        if counts[0] != 0:
            raise ValueError("misses(0) must be zero: a block cannot conflict with itself")
        # Frozen for real: the memoized digest keys cache artifacts.
        # Copy when the conversion was a no-op on a writable caller
        # array, so the freeze never leaks out as a side effect.
        if counts is self.counts and counts.flags.writeable:
            counts = counts.copy()
        counts.setflags(write=False)
        object.__setattr__(self, "counts", counts)

    @property
    def digest(self) -> str:
        """Stable content digest over every field of the profile.

        Used by the artifact cache to key search outcomes against the
        exact profile they were derived from.  Memoized per instance
        (the counts array is frozen).
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            h = hashlib.sha256(b"conflict-profile-v1")
            h.update(
                f"|n={self.n}|compulsory={self.compulsory}|capacity={self.capacity}"
                f"|accesses={self.accesses}|beyond={self.beyond_window}|".encode()
            )
            h.update(self.counts.tobytes())
            cached = h.hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    @property
    def total_weight(self) -> int:
        """Sum of all vector counts."""
        return int(self.counts.sum())

    @property
    def num_distinct_vectors(self) -> int:
        return int(np.count_nonzero(self.counts))

    def support(self) -> tuple[np.ndarray, np.ndarray]:
        """(vectors, counts) for the non-zero entries, as numpy arrays."""
        vectors = np.nonzero(self.counts)[0].astype(np.uint32)
        return vectors, self.counts[vectors]

    def weight_of(self, vector: int) -> int:
        """``misses(v)`` for a single vector."""
        if not 0 <= vector < (1 << self.n):
            raise ValueError(f"vector {vector:#x} does not fit in {self.n} bits")
        return int(self.counts[vector])

    def merged_with(self, other: "ConflictProfile") -> "ConflictProfile":
        """Pointwise sum of two profiles over the same window."""
        if self.n != other.n:
            raise ValueError(f"window sizes differ: {self.n} vs {other.n}")
        return ConflictProfile(
            self.n,
            self.counts + other.counts,
            compulsory=self.compulsory + other.compulsory,
            capacity=self.capacity + other.capacity,
            accesses=self.accesses + other.accesses,
            beyond_window=self.beyond_window + other.beyond_window,
        )

    def top_vectors(self, k: int) -> list[tuple[int, int]]:
        """The ``k`` heaviest conflict vectors as (vector, count) pairs."""
        vectors, counts = self.support()
        order = np.argsort(counts)[::-1][:k]
        return [(int(vectors[i]), int(counts[i])) for i in order]

    def save(self, path: str | Path) -> None:
        np.savez_compressed(
            Path(path),
            n=self.n,
            counts=self.counts,
            meta=np.array(
                [self.compulsory, self.capacity, self.accesses, self.beyond_window],
                dtype=np.int64,
            ),
        )

    @classmethod
    def load(cls, path: str | Path) -> "ConflictProfile":
        with np.load(Path(path)) as data:
            meta = data["meta"]
            return cls(
                int(data["n"]),
                data["counts"],
                compulsory=int(meta[0]),
                capacity=int(meta[1]),
                accesses=int(meta[2]),
                # Archives written before beyond_window was persisted
                # have a three-entry meta vector.
                beyond_window=int(meta[3]) if len(meta) > 3 else 0,
            )

    def __repr__(self) -> str:
        return (
            f"ConflictProfile(n={self.n}, distinct={self.num_distinct_vectors}, "
            f"weight={self.total_weight}, compulsory={self.compulsory}, "
            f"capacity={self.capacity}, accesses={self.accesses})"
        )


def profile_blocks(
    blocks: np.ndarray, capacity_blocks: int, n: int
) -> ConflictProfile:
    """Run the Fig. 1 profiling pass over a block-address trace.

    Parameters
    ----------
    blocks:
        Block addresses in program order.
    capacity_blocks:
        Cache capacity in blocks; accesses whose reuse distance reaches
        it are capacity misses and contribute no conflict vectors.
    n:
        Hashed-address window; conflict vectors are truncated to ``n``
        bits exactly as the hash functions only see ``n`` bits.

    Implementation note: instead of walking an explicit LRU stack (see
    :func:`profile_blocks_reference`), each block's *current last
    position* owns a slot in a time-indexed array.  The blocks above
    ``x`` on the stack are then exactly the live slots between ``x``'s
    previous access and now, retrieved as one numpy slice — the walk
    vectorizes and the result is identical.
    """
    if capacity_blocks < 1:
        raise ValueError(f"capacity must be >= 1 block, got {capacity_blocks}")
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    count = len(blocks)
    window = np.int64(mask(n))
    counts = np.zeros(1 << n, dtype=np.int64)
    last_owner = np.full(count, -1, dtype=np.int64)  # slot t -> block or -1
    last_position: dict[int, int] = {}
    chunks: list[np.ndarray] = []
    buffered = 0
    compulsory = 0
    capacity = 0
    beyond_window = 0

    def flush() -> None:
        nonlocal buffered
        if chunks:
            merged = np.concatenate(chunks)
            np.add(counts, np.bincount(merged, minlength=1 << n), out=counts)
            chunks.clear()
            buffered = 0

    for t in range(count):
        block = int(blocks[t])
        p = last_position.get(block)
        if p is None:
            compulsory += 1
        else:
            in_window = last_owner[p + 1 : t]
            above = in_window[in_window >= 0]
            if len(above) >= capacity_blocks:
                capacity += 1
            elif len(above):
                vectors = np.bitwise_and(np.bitwise_xor(above, block), window)
                zero = int(np.count_nonzero(vectors == 0))
                if zero:
                    beyond_window += zero
                    vectors = vectors[vectors != 0]
                if len(vectors):
                    chunks.append(vectors)
                    buffered += len(vectors)
                    if buffered >= _FLUSH_THRESHOLD:
                        flush()
            last_owner[p] = -1
        last_owner[t] = block
        last_position[block] = t
    flush()
    return ConflictProfile(
        n,
        counts,
        compulsory=compulsory,
        capacity=capacity,
        accesses=count,
        beyond_window=beyond_window,
    )


def profile_blocks_reference(
    blocks: np.ndarray, capacity_blocks: int, n: int
) -> ConflictProfile:
    """Literal transcription of the paper's Fig. 1 with an LRU stack.

    Kept as the oracle for property tests of :func:`profile_blocks`.
    """
    if capacity_blocks < 1:
        raise ValueError(f"capacity must be >= 1 block, got {capacity_blocks}")
    window = mask(n)
    counts = np.zeros(1 << n, dtype=np.int64)
    stack = LRUStack()
    compulsory = 0
    capacity = 0
    beyond_window = 0

    for raw in np.asarray(blocks, dtype=np.uint64):
        block = int(raw)
        if block not in stack:
            compulsory += 1
            stack.push(block)
            continue
        above = stack.blocks_above(block, capacity_blocks - 1)
        if above is None:
            capacity += 1
        else:
            for other in above:
                vector = (block ^ other) & window
                if vector:
                    counts[vector] += 1
                else:
                    beyond_window += 1
        stack.push(block)
    return ConflictProfile(
        n,
        counts,
        compulsory=compulsory,
        capacity=capacity,
        accesses=len(blocks),
        beyond_window=beyond_window,
    )


def profile_trace(
    trace: Trace, geometry: CacheGeometry, n: int
) -> ConflictProfile:
    """Profile a :class:`~repro.trace.Trace` for a cache geometry."""
    blocks = trace.block_addresses(geometry.block_size)
    return profile_blocks(blocks, geometry.num_blocks, n)
