"""Conflict-vector profiling — the paper's Fig. 1 algorithm.

A conflict between blocks ``x`` and ``y`` is only possible when
``v = x ^ y`` lies in the hash function's null space (Eq. 2), so the
number of conflict misses of *any* function ``H`` can be estimated from
a single trace pass that histograms the vectors ``x ^ y`` between each
access and the intervening accesses (Eq. 4):

    misses(H) ~= sum over v in N(H) of misses(v)

The profiler filters misses no indexing change can fix: compulsory
misses (first touches) and capacity misses (reuse distance of at least
the cache capacity — such accesses miss even in a fully-associative LRU
cache of the same size).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.gf2.bitvec import mask
from repro.profiling.lru_stack import LRUStack
from repro.trace.trace import Trace

__all__ = [
    "ConflictProfile",
    "profile_blocks",
    "profile_blocks_slotted",
    "profile_trace",
]

_FLUSH_THRESHOLD = 1 << 22  # buffered conflict vectors before a bincount flush

#: Accesses per chunk of the vectorized kernel.  Shorter chunks keep
#: the chunk-end survivor shortcut sharp (fewer candidates die inside
#: the chunk, so more capacity misses resolve without any gather) and
#: the work arrays cache-resident; 4 Ki amortizes the per-chunk numpy
#: call overhead while staying near the measured sweet spot across
#: loop/stream/random workloads.
_PROFILE_CHUNK = 1 << 12

#: Elements of a padded (segments x probe-width) grid the dense probe
#: may materialize per round (a few ~128 MB int64 temporaries); larger
#: rounds fall back to the CSR gather in `_FLUSH_THRESHOLD` batches.
_DENSE_LIMIT = 1 << 24


@dataclass(frozen=True)
class ConflictProfile:
    """Histogram of conflict vectors over the hashed address window.

    ``counts[v]`` is the number of (access, intervening block) pairs
    whose XOR, truncated to ``n`` bits, equals ``v`` — the paper's
    ``misses(v)``.
    """

    n: int
    counts: np.ndarray
    compulsory: int = 0
    capacity: int = 0
    accesses: int = 0
    #: Pairs of distinct blocks equal in all hashed bits.  They conflict
    #: under *every* n-bit hash function (0 is in every null space), so
    #: they are an unavoidable constant excluded from ``counts``.
    beyond_window: int = 0

    def __post_init__(self):
        counts = np.ascontiguousarray(self.counts, dtype=np.int64)
        if counts.shape != (1 << self.n,):
            raise ValueError(
                f"counts must have shape ({1 << self.n},), got {counts.shape}"
            )
        if counts[0] != 0:
            raise ValueError("misses(0) must be zero: a block cannot conflict with itself")
        # Frozen for real: the memoized digest keys cache artifacts.
        # Copy when the conversion was a no-op on a writable caller
        # array, so the freeze never leaks out as a side effect.
        if counts is self.counts and counts.flags.writeable:
            counts = counts.copy()
        counts.setflags(write=False)
        object.__setattr__(self, "counts", counts)

    @property
    def digest(self) -> str:
        """Stable content digest over every field of the profile.

        Used by the artifact cache to key search outcomes against the
        exact profile they were derived from.  Memoized per instance
        (the counts array is frozen).
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            h = hashlib.sha256(b"conflict-profile-v1")
            h.update(
                f"|n={self.n}|compulsory={self.compulsory}|capacity={self.capacity}"
                f"|accesses={self.accesses}|beyond={self.beyond_window}|".encode()
            )
            h.update(self.counts.tobytes())
            cached = h.hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    @property
    def total_weight(self) -> int:
        """Sum of all vector counts."""
        return int(self.counts.sum())

    @property
    def num_distinct_vectors(self) -> int:
        return int(np.count_nonzero(self.counts))

    def support(self) -> tuple[np.ndarray, np.ndarray]:
        """(vectors, counts) for the non-zero entries, as numpy arrays."""
        vectors = np.nonzero(self.counts)[0].astype(np.uint32)
        return vectors, self.counts[vectors]

    def weight_of(self, vector: int) -> int:
        """``misses(v)`` for a single vector."""
        if not 0 <= vector < (1 << self.n):
            raise ValueError(f"vector {vector:#x} does not fit in {self.n} bits")
        return int(self.counts[vector])

    @classmethod
    def merge(cls, profiles) -> "ConflictProfile":
        """One-pass pointwise sum of any number of profiles.

        Accepts any iterable (consumed lazily, so a generator of
        per-shard or per-window profiles never holds more than one
        addend plus the accumulator — memory stays O(2^n), not
        O(profiles x 2^n)) and accumulates every histogram into a
        single buffer.  Equivalent to chaining :meth:`merged_with`
        (property-tested) without the intermediate profile object and
        ``2^n`` temporary per addend.
        """
        iterator = iter(profiles)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("merge needs at least one profile") from None
        counts = np.array(first.counts, dtype=np.int64)
        compulsory = first.compulsory
        capacity = first.capacity
        accesses = first.accesses
        beyond_window = first.beyond_window
        for profile in iterator:
            if profile.n != first.n:
                raise ValueError(f"window sizes differ: {first.n} vs {profile.n}")
            np.add(counts, profile.counts, out=counts)
            compulsory += profile.compulsory
            capacity += profile.capacity
            accesses += profile.accesses
            beyond_window += profile.beyond_window
        # Pre-freeze so the constructor adopts the accumulator instead
        # of defensively copying a writable caller array.
        counts.setflags(write=False)
        return cls(
            first.n,
            counts,
            compulsory=compulsory,
            capacity=capacity,
            accesses=accesses,
            beyond_window=beyond_window,
        )

    def merged_with(self, other: "ConflictProfile") -> "ConflictProfile":
        """Pointwise sum of two profiles over the same window."""
        return ConflictProfile.merge((self, other))

    def top_vectors(self, k: int) -> list[tuple[int, int]]:
        """The ``k`` heaviest conflict vectors as (vector, count) pairs."""
        vectors, counts = self.support()
        order = np.argsort(counts)[::-1][:k]
        return [(int(vectors[i]), int(counts[i])) for i in order]

    def save(self, path: str | Path) -> None:
        np.savez_compressed(
            Path(path),
            n=self.n,
            counts=self.counts,
            meta=np.array(
                [self.compulsory, self.capacity, self.accesses, self.beyond_window],
                dtype=np.int64,
            ),
        )

    @classmethod
    def load(cls, path: str | Path) -> "ConflictProfile":
        with np.load(Path(path)) as data:
            meta = data["meta"]
            return cls(
                int(data["n"]),
                data["counts"],
                compulsory=int(meta[0]),
                capacity=int(meta[1]),
                accesses=int(meta[2]),
                # Archives written before beyond_window was persisted
                # have a three-entry meta vector.
                beyond_window=int(meta[3]) if len(meta) > 3 else 0,
            )

    def __repr__(self) -> str:
        return (
            f"ConflictProfile(n={self.n}, distinct={self.num_distinct_vectors}, "
            f"weight={self.total_weight}, compulsory={self.compulsory}, "
            f"capacity={self.capacity}, accesses={self.accesses})"
        )


def _segment_batches(offsets: np.ndarray, limit: int):
    """Split CSR segments into batches of ~``limit`` flat elements.

    Batches always align with segment boundaries (an access's interval
    is never split), so a batch can exceed ``limit`` only when a single
    segment does; this bounds the transient gather arrays on traces
    with long reuse intervals.
    """
    segments = len(offsets) - 1
    start = 0
    while start < segments:
        end = int(np.searchsorted(offsets, offsets[start] + limit, side="right")) - 1
        if end <= start:
            end = start + 1
        yield start, end
        start = end


def _previous_occurrences(blocks: np.ndarray) -> np.ndarray:
    """``prev[t]`` = index of the previous access to ``blocks[t]``, or -1.

    One stable argsort groups equal blocks while preserving program
    order inside each group, so consecutive positions in sort order
    with equal blocks are exactly the (previous, current) occurrence
    pairs — no per-access dict lookup.
    """
    count = len(blocks)
    order = np.argsort(blocks, kind="stable")
    in_order = blocks[order]
    repeat = np.empty(count, dtype=bool)
    if count:
        repeat[0] = False
        np.equal(in_order[1:], in_order[:-1], out=repeat[1:])
    prev = np.full(count, -1, dtype=np.int64)
    prev[order[repeat]] = order[np.flatnonzero(repeat) - 1]
    return prev


def profile_blocks(
    blocks: np.ndarray,
    capacity_blocks: int,
    n: int,
    chunk_size: int | None = None,
) -> ConflictProfile:
    """Run the Fig. 1 profiling pass over a block-address trace.

    Parameters
    ----------
    blocks:
        Block addresses in program order.  Normalized to ``uint64``
        (full 64-bit addresses are valid block ids).
    capacity_blocks:
        Cache capacity in blocks; accesses whose reuse distance reaches
        it are capacity misses and contribute no conflict vectors.
    n:
        Hashed-address window; conflict vectors are truncated to ``n``
        bits exactly as the hash functions only see ``n`` bits.
    chunk_size:
        Accesses per vectorized chunk (default ``_PROFILE_CHUNK``);
        only property tests shrink it.

    This is the chunked, fully vectorized kernel: no per-access Python
    iteration.  Complexity is ``O(N log N)`` for the global
    previous-occurrence pass plus, per access, work proportional to
    the candidate slots in its reuse interval — at most the number of
    distinct blocks live at the chunk boundary plus the chunk length,
    with intervals already known to hold ``capacity_blocks`` surviving
    slots skipped outright.  Bit-identical to
    :func:`profile_blocks_reference` (property-tested), ≥10x faster
    than the per-access :func:`profile_blocks_slotted` loop on
    million-access traces (see ``benchmarks/bench_profiler.py``).
    """
    if capacity_blocks < 1:
        raise ValueError(f"capacity must be >= 1 block, got {capacity_blocks}")
    blocks = np.ascontiguousarray(np.asarray(blocks), dtype=np.uint64)
    counts = np.zeros(1 << n, dtype=np.int64)
    compulsory, capacity, beyond_window = _profile_into(
        blocks, capacity_blocks, n, counts, chunk_size=chunk_size
    )
    return ConflictProfile(
        n,
        counts,
        compulsory=compulsory,
        capacity=capacity,
        accesses=len(blocks),
        beyond_window=beyond_window,
    )


def _profile_into(
    blocks: np.ndarray,
    capacity_blocks: int,
    n: int,
    counts: np.ndarray,
    chunk_size: int | None = None,
) -> tuple[int, int, int]:
    """Accumulate one Fig. 1 pass into ``counts``; the shared kernel of
    :func:`profile_blocks` and sampled multi-window profiling.

    Returns ``(compulsory, capacity, beyond_window)``.  ``blocks`` must
    already be a ``uint64`` array.

    Per chunk of accesses, the pass works on a *candidate* array: the
    compacted live slots carried over from previous chunks (one entry
    per block whose last occurrence precedes the chunk) followed by the
    chunk's own slots.  Each access's "blocks above" set is then the
    candidates inside its reuse interval that survive to its timestamp,
    materialized for all accesses at once by one CSR-style flat gather
    (repeat of interval starts plus a cumulative-length arange).
    """
    count = len(blocks)
    if count == 0:
        return 0, 0, 0
    if chunk_size is None:
        chunk_size = _PROFILE_CHUNK
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    window = np.uint64(mask(n))
    prev = _previous_occurrences(blocks)
    compulsory = int(np.count_nonzero(prev < 0))
    # nxt[t] = next access to blocks[t], or `count` ("never"): slot t is
    # live (is its block's most recent occurrence) at any time in
    # (t, nxt[t]].
    nxt = np.full(count, count, dtype=np.int64)
    repeats = np.flatnonzero(prev >= 0)
    nxt[prev[repeats]] = repeats
    capacity = 0
    beyond_window = 0
    # Global times of slots live at the current chunk start, ascending.
    live_times = np.empty(0, dtype=np.int64)

    for t0 in range(0, count, chunk_size):
        t1 = min(t0 + chunk_size, count)
        times = np.arange(t0, t1, dtype=np.int64)
        cand_times = np.concatenate([live_times, times])
        cand_death = nxt[cand_times]
        cand_blocks = blocks[cand_times]

        chunk_prev = prev[t0:t1]
        seen = chunk_prev >= 0
        t_seen = times[seen]
        # Interval of candidate positions strictly between the previous
        # occurrence and the access: candidates are time-sorted, and
        # the access's own slot sits at live_times.size + (t - t0).
        lo = np.searchsorted(cand_times, chunk_prev[seen], side="right")
        hi = live_times.size + (t_seen - t0)

        # Candidates surviving the whole chunk are live at every access
        # in it; intervals already holding `capacity_blocks` of them
        # are capacity misses — skip their gather entirely.  This keeps
        # long-reuse scans O(1) per access instead of O(interval).
        survives = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(cand_death >= t1)]
        )
        sure_capacity = (survives[hi] - survives[lo]) >= capacity_blocks
        capacity += int(np.count_nonzero(sure_capacity))

        need = np.flatnonzero(~sure_capacity)
        g_lo = lo[need]
        g_t = t_seen[need]
        g_block = blocks[g_t]

        # Reverse-order probing with a doubling budget, mirroring the
        # reference's bounded top-down stack walk: gather candidates
        # from the most recent end of each interval, stop a segment as
        # soon as `capacity_blocks` live candidates are seen (capacity
        # miss) or its interval is exhausted (conflict miss).  Capacity
        # misses therefore cost O(capacity + recent dead slots), not
        # O(interval).
        live_seen = np.zeros(len(need), dtype=np.int64)
        cursor = hi[need].copy()  # un-probed upper end of each interval
        kept_flat: list[np.ndarray] = []
        kept_seg: list[np.ndarray] = []
        budget = capacity_blocks + 32
        open_ids = np.flatnonzero(cursor > g_lo)
        while len(open_ids):
            take = np.minimum(cursor[open_ids] - g_lo[open_ids], budget)
            width = int(take.max())
            if len(open_ids) * width <= _DENSE_LIMIT:
                # Dense probe: one (segments x width) grid, broadcast
                # arithmetic instead of per-element repeats.
                lanes = np.arange(width, dtype=np.int64)[None, :]
                valid = lanes < take[:, None]
                grid = np.where(valid, (cursor[open_ids] - take)[:, None] + lanes, 0)
                # A candidate is on the stack above the access iff it
                # is still its block's latest occurrence at the access.
                alive = (cand_death[grid] > g_t[open_ids, None]) & valid
                live_seen[open_ids] += alive.sum(axis=1)
                # Only segments still below capacity can end as
                # conflict misses; buffer just their elements (one
                # crossing the threshold in a later round is filtered
                # below).
                still = live_seen[open_ids] < capacity_blocks
                if still.any():
                    elem = alive & still[:, None]
                    kept_flat.append(grid[elem])
                    kept_seg.append(
                        np.broadcast_to(open_ids[:, None], elem.shape)[elem]
                    )
            else:
                # Sparse fallback: CSR flat gather in bounded batches,
                # for rounds whose padded grid would be too large.
                offsets = np.concatenate(
                    [np.zeros(1, dtype=np.int64), np.cumsum(take)]
                )
                for s0, s1 in _segment_batches(offsets, _FLUSH_THRESHOLD):
                    ids = open_ids[s0:s1]
                    b_take = take[s0:s1]
                    # Element j of batch segment i sits at candidate
                    # position (cursor[i] - take[i]) + j.
                    seg = np.repeat(np.arange(s1 - s0, dtype=np.int64), b_take)
                    flat = np.arange(
                        int(offsets[s0]), int(offsets[s1]), dtype=np.int64
                    ) + np.repeat(
                        cursor[ids] - b_take - offsets[s0:s1], b_take
                    )
                    alive = cand_death[flat] > np.repeat(g_t[ids], b_take)
                    live_seen[ids] += np.bincount(
                        seg[alive], minlength=s1 - s0
                    )
                    still = live_seen[ids] < capacity_blocks
                    if still.any():
                        elem_keep = alive & still[seg]
                        kept_flat.append(flat[elem_keep])
                        kept_seg.append(ids[seg[elem_keep]])
            cursor[open_ids] -= take
            open_ids = open_ids[
                (live_seen[open_ids] < capacity_blocks)
                & (cursor[open_ids] > g_lo[open_ids])
            ]
            budget = min(budget * 2, 1 << 62)  # keep int64-safe
        over = live_seen >= capacity_blocks
        capacity += int(np.count_nonzero(over))
        if kept_flat:
            flat_all = np.concatenate(kept_flat)
            seg_all = np.concatenate(kept_seg)
            keep = ~over[seg_all]
            vectors = np.bitwise_and(
                np.bitwise_xor(
                    cand_blocks[flat_all[keep]], g_block[seg_all[keep]]
                ),
                window,
            ).astype(np.int64)
            zero = int(np.count_nonzero(vectors == 0))
            if zero:
                beyond_window += zero
                vectors = vectors[vectors != 0]
            if len(vectors):
                np.add(
                    counts,
                    np.bincount(vectors, minlength=counts.size),
                    out=counts,
                )

        # Compact the live-slot array for the next chunk: old slots
        # that survived this chunk, then chunk slots still live at t1.
        live_times = np.concatenate(
            [
                live_times[cand_death[: live_times.size] >= t1],
                times[nxt[t0:t1] >= t1],
            ]
        )
    return compulsory, capacity, beyond_window


def profile_blocks_slotted(
    blocks: np.ndarray, capacity_blocks: int, n: int
) -> ConflictProfile:
    """Per-access live-slot implementation of the Fig. 1 pass.

    The previous production kernel, kept as a second oracle next to
    :func:`profile_blocks_reference`: each block's *current last
    position* owns a slot in a time-indexed array, and the blocks above
    ``x`` on the LRU stack are exactly the live slots between ``x``'s
    previous access and now, retrieved as one numpy slice per access.
    Identical results to :func:`profile_blocks`, which replaces the
    Python-rate access loop with chunked array passes.
    """
    if capacity_blocks < 1:
        raise ValueError(f"capacity must be >= 1 block, got {capacity_blocks}")
    blocks = np.ascontiguousarray(np.asarray(blocks), dtype=np.uint64)
    count = len(blocks)
    window = np.uint64(mask(n))
    counts = np.zeros(1 << n, dtype=np.int64)
    last_owner = np.zeros(count, dtype=np.uint64)  # slot t -> block
    live = np.zeros(count, dtype=bool)  # slot t is its block's latest
    last_position: dict[int, int] = {}
    chunks: list[np.ndarray] = []
    buffered = 0
    compulsory = 0
    capacity = 0
    beyond_window = 0

    def flush() -> None:
        nonlocal buffered
        if chunks:
            merged = np.concatenate(chunks)
            np.add(counts, np.bincount(merged, minlength=1 << n), out=counts)
            chunks.clear()
            buffered = 0

    for t in range(count):
        block = int(blocks[t])
        p = last_position.get(block)
        if p is None:
            compulsory += 1
        else:
            above = last_owner[p + 1 : t][live[p + 1 : t]]
            if len(above) >= capacity_blocks:
                capacity += 1
            elif len(above):
                vectors = np.bitwise_and(
                    np.bitwise_xor(above, np.uint64(block)), window
                ).astype(np.int64)
                zero = int(np.count_nonzero(vectors == 0))
                if zero:
                    beyond_window += zero
                    vectors = vectors[vectors != 0]
                if len(vectors):
                    chunks.append(vectors)
                    buffered += len(vectors)
                    if buffered >= _FLUSH_THRESHOLD:
                        flush()
            live[p] = False
        last_owner[t] = np.uint64(block)
        live[t] = True
        last_position[block] = t
    flush()
    return ConflictProfile(
        n,
        counts,
        compulsory=compulsory,
        capacity=capacity,
        accesses=count,
        beyond_window=beyond_window,
    )


def profile_blocks_reference(
    blocks: np.ndarray, capacity_blocks: int, n: int
) -> ConflictProfile:
    """Literal transcription of the paper's Fig. 1 with an LRU stack.

    Kept as the oracle for property tests of :func:`profile_blocks`.
    """
    if capacity_blocks < 1:
        raise ValueError(f"capacity must be >= 1 block, got {capacity_blocks}")
    window = mask(n)
    counts = np.zeros(1 << n, dtype=np.int64)
    stack = LRUStack()
    compulsory = 0
    capacity = 0
    beyond_window = 0

    for raw in np.asarray(blocks, dtype=np.uint64):
        block = int(raw)
        if block not in stack:
            compulsory += 1
            stack.push(block)
            continue
        above = stack.blocks_above(block, capacity_blocks - 1)
        if above is None:
            capacity += 1
        else:
            for other in above:
                vector = (block ^ other) & window
                if vector:
                    counts[vector] += 1
                else:
                    beyond_window += 1
        stack.push(block)
    return ConflictProfile(
        n,
        counts,
        compulsory=compulsory,
        capacity=capacity,
        accesses=len(blocks),
        beyond_window=beyond_window,
    )


def profile_trace(
    trace: Trace, geometry: CacheGeometry, n: int
) -> ConflictProfile:
    """Profile a :class:`~repro.trace.Trace` for a cache geometry.

    Runs the vectorized :func:`profile_blocks` kernel — ``O(N log N)``
    in the trace length plus output-proportional gather work, with no
    per-access Python iteration.
    """
    blocks = trace.block_addresses(geometry.block_size)
    return profile_blocks(blocks, geometry.num_blocks, n)
