"""Sharded, parallel Fig. 1 profiling for out-of-core traces.

The single-pass kernel (:func:`repro.profiling.profile_blocks`) needs
the whole block stream plus O(N) side arrays in memory.  This module
cuts the stream into a :class:`ShardPlan` of fixed-size shards, profiles
every shard independently — in parallel worker processes when asked —
and merges the per-shard histograms into a profile **bit-identical** to
the single pass, in memory bounded by the shard size and the block
working set rather than the trace length.

Why exactness survives the cut
------------------------------
The kernel only consumes *relative order*: an access contributes the
XOR vectors of the distinct blocks above its previous occurrence on the
LRU stack, or a capacity/compulsory miss.  The LRU stack state at a
shard boundary is fully described by (block, last occurrence time) for
every block seen so far.  So each shard is profiled on a synthetic
stream: one access per previously-seen block, in ascending
last-occurrence order (the *prefix*), followed by the shard itself.
The prefix reproduces the exact stack the global pass would have, its
accesses are all first touches (``len(prefix)`` compulsory misses, no
vectors, no capacity misses), and subtracting them leaves precisely the
shard's contribution to the global profile.  A cheap parallel *scan*
pass computes each shard's (block, last time) summary; a sequential
prefix-merge of those summaries (plain array ops) yields every shard's
incoming state.

Resumability
------------
With an artifact cache, every shard profile and scan summary is stored
under a key derived from the trace digest, geometry and shard bounds.
A re-run loads finished shards and recomputes only the missing ones —
``ShardedProfileResult.recomputed_shards == 0`` on a warm replay — and
the scan phase is skipped entirely once no shard is missing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import partial
from typing import Iterator

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.profiling.conflict_profile import ConflictProfile, _profile_into
from repro.trace.trace import Trace

__all__ = [
    "Shard",
    "ShardPlan",
    "ShardedProfileResult",
    "ArrayBlockSource",
    "FileBlockSource",
    "profile_blocks_sharded",
    "profile_trace_sharded",
    "run_sharded_profile",
]

#: Default accesses per shard: ~32 MB of uint64 blocks, small enough
#: that a handful of workers fit comfortably in memory, large enough to
#: amortize scheduling and prefix replay.
DEFAULT_SHARD_SIZE = 1 << 22


@dataclass(frozen=True)
class Shard:
    """One ``[start, stop)`` slice of the block stream."""

    index: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ShardPlan:
    """Fixed-size, order-preserving cut of ``total`` accesses.

    Shards partition ``[0, total)`` exactly; the LRU-stack overlap
    between consecutive shards is not duplicated into the slices but
    carried as scan state (see the module docstring), so the plan is
    a pure arithmetic object.
    """

    total: int
    shard_size: int

    def __post_init__(self):
        if self.total < 0:
            raise ValueError(f"total must be >= 0, got {self.total}")
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")

    @property
    def num_shards(self) -> int:
        return -(-self.total // self.shard_size)

    def __len__(self) -> int:
        return self.num_shards

    def __getitem__(self, index: int) -> Shard:
        if not 0 <= index < self.num_shards:
            raise IndexError(index)
        start = index * self.shard_size
        return Shard(index, start, min(start + self.shard_size, self.total))

    def __iter__(self) -> Iterator[Shard]:
        return (self[i] for i in range(self.num_shards))


@dataclass(frozen=True)
class ArrayBlockSource:
    """Block stream backed by an in-memory array (ships to workers by
    pickling the array — fine for tests and serial runs)."""

    blocks: np.ndarray

    def __len__(self) -> int:
        return len(self.blocks)

    def read(self, start: int, stop: int) -> np.ndarray:
        return np.ascontiguousarray(self.blocks[start:stop], dtype=np.uint64)


@dataclass(frozen=True)
class FileBlockSource:
    """Block stream backed by a raw ``.bin`` trace file.

    Pickles as a path, so parallel workers each reopen the mapping and
    page in only their own shard — the reason a 100M-access trace
    profiles under a memory budget that never fits the trace.
    ``block_shift`` is ``log2(block_size)`` applied on read.
    """

    path: str
    count: int
    block_shift: int = 0

    def __len__(self) -> int:
        return self.count

    def read(self, start: int, stop: int) -> np.ndarray:
        mapped = np.memmap(self.path, dtype=np.dtype("<u8"), mode="r")
        # Both branches allocate a fresh shard-sized array, so the
        # mapping (and its paged-in slice) is released on return.
        if self.block_shift:
            return np.asarray(
                np.right_shift(mapped[start:stop], np.uint64(self.block_shift)),
                dtype=np.uint64,
            )
        return np.array(mapped[start:stop], dtype=np.uint64)


@dataclass(frozen=True)
class ShardedProfileResult:
    """A merged profile plus how the sharded run actually executed."""

    profile: ConflictProfile
    plan: ShardPlan
    workers: int
    #: Shards whose profile was computed this run (vs loaded).
    recomputed_shards: int
    cached_shards: int
    #: Scan summaries computed this run (vs loaded or not needed).
    recomputed_scans: int
    seconds: float

    @property
    def fully_cached(self) -> bool:
        """True when every shard profile came from the artifact cache."""
        return len(self.plan) > 0 and self.recomputed_shards == 0


def _scan_summary(blocks: np.ndarray, start: int) -> tuple[np.ndarray, np.ndarray]:
    """(unique blocks sorted ascending, their global last-access times).

    One stable argsort: within each equal-block group program order is
    preserved, so the last row of a group is the block's latest access.
    """
    order = np.argsort(blocks, kind="stable")
    in_order = blocks[order]
    if not len(in_order):
        return in_order, np.empty(0, dtype=np.int64)
    last = np.flatnonzero(np.append(in_order[1:] != in_order[:-1], True))
    return in_order[last], start + order[last].astype(np.int64)


def _merge_state(
    state_blocks: np.ndarray,
    state_times: np.ndarray,
    new_blocks: np.ndarray,
    new_times: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Fold a later shard's scan summary into the running (block, last
    time) state; the summary wins on duplicates (its times are later)."""
    if not len(state_blocks):
        return new_blocks, new_times
    if not len(new_blocks):
        return state_blocks, state_times
    all_blocks = np.concatenate([state_blocks, new_blocks])
    all_times = np.concatenate([state_times, new_times])
    order = np.argsort(all_blocks, kind="stable")
    in_order = all_blocks[order]
    last = np.flatnonzero(np.append(in_order[1:] != in_order[:-1], True))
    return in_order[last], all_times[order[last]]


def _profile_shard(
    shard_blocks: np.ndarray,
    prefix_blocks: np.ndarray,
    capacity_blocks: int,
    n: int,
) -> ConflictProfile:
    """Profile one shard given the blocks live before it, in ascending
    last-occurrence order (the synthetic-prefix replay)."""
    if len(prefix_blocks):
        synthetic = np.concatenate([prefix_blocks, shard_blocks])
    else:
        synthetic = shard_blocks
    counts = np.zeros(1 << n, dtype=np.int64)
    compulsory, capacity, beyond_window = _profile_into(
        synthetic, capacity_blocks, n, counts
    )
    counts.setflags(write=False)
    return ConflictProfile(
        n,
        counts,
        compulsory=compulsory - len(prefix_blocks),
        capacity=capacity,
        accesses=len(shard_blocks),
        beyond_window=beyond_window,
    )


# -- worker tasks (top level so the process pool can pickle them) ----------


def _scan_shard_task(item, source) -> tuple[np.ndarray, np.ndarray, bool]:
    """Scan one shard: return (blocks, last times, recomputed)."""
    from repro.pipeline.faults import maybe_inject
    from repro.pipeline.runtime import current_context

    start, stop, key = item
    # Entry injection, before any cache access: a retried attempt redoes
    # exactly what a clean attempt would (see repro.pipeline.faults).
    maybe_inject("shard.profile", f"scan:{start}:{stop}")
    context = current_context()
    cache = context.cache if context is not None else None
    if cache is not None and key is not None:
        stored = cache.load_arrays("shard-scan", key)
        if stored is not None:
            return stored["blocks"], stored["times"], False
    blocks, times = _scan_summary(source.read(start, stop), start)
    if cache is not None and key is not None:
        cache.store_arrays("shard-scan", key, {"blocks": blocks, "times": times})
    return blocks, times, True


def _profile_shard_task(item, source, capacity_blocks, n) -> ConflictProfile:
    """Profile one (known-missing) shard and store its artifact."""
    from repro.pipeline.faults import maybe_inject
    from repro.pipeline.runtime import current_context

    start, stop, key, prefix_blocks = item
    maybe_inject("shard.profile", f"profile:{start}:{stop}")
    profile = _profile_shard(source.read(start, stop), prefix_blocks, capacity_blocks, n)
    context = current_context()
    if context is not None and context.cache is not None and key is not None:
        context.cache.store_profile(key, profile, kind="shard-profile")
    return profile


# -- drivers ---------------------------------------------------------------


def _empty_profile(n: int) -> ConflictProfile:
    return ConflictProfile(n, np.zeros(1 << n, dtype=np.int64))


def _run_sharded(
    source,
    capacity_blocks: int,
    n: int,
    shard_size: int,
    workers: int | None,
    context,
    key_base: dict | None,
    retries: int = 0,
    task_timeout: float | None = None,
    on_error: str = "raise",
) -> ShardedProfileResult:
    from repro.pipeline.artifact_cache import stable_key
    from repro.pipeline.campaign import map_with_context
    from repro.pipeline.runtime import use_context

    if capacity_blocks < 1:
        raise ValueError(f"capacity must be >= 1 block, got {capacity_blocks}")
    # A profile missing a shard is not a partial result but a wrong one,
    # so the skip policy (meaningful for independent campaign rows) is
    # coerced to raise here; retries/timeouts apply unchanged.
    if on_error == "skip":
        on_error = "raise"
    t0 = time.perf_counter()
    plan = ShardPlan(len(source), shard_size)
    shards = list(plan)
    if workers is None:
        workers = min(len(shards), os.cpu_count() or 1) or 1
    workers = max(1, workers)
    if not shards:
        return ShardedProfileResult(
            profile=_empty_profile(n),
            plan=plan,
            workers=workers,
            recomputed_shards=0,
            cached_shards=0,
            recomputed_scans=0,
            seconds=time.perf_counter() - t0,
        )

    cache = context.cache if context is not None else None
    cache_dir = str(cache.root) if cache is not None else None

    def shard_key(kind: str, shard: Shard) -> str | None:
        if key_base is None or cache is None:
            return None
        return stable_key(kind, {**key_base, "start": shard.start, "stop": shard.stop})

    profile_keys = [shard_key("shard-profile", shard) for shard in shards]
    profiles: list[ConflictProfile | None] = [
        cache.load_profile(key, kind="shard-profile")
        if cache is not None and key is not None
        else None
        for key in profile_keys
    ]
    missing = [i for i, profile in enumerate(profiles) if profile is None]
    recomputed_scans = 0
    if missing:
        # Incoming LRU-stack state per missing shard, via scan summaries
        # of every shard before the furthest missing one.  Scans fan out
        # over the same pool as the profiling phase.
        scan_items = [
            (shard.start, shard.stop, shard_key("shard-scan", shard))
            for shard in shards[: max(missing)]
        ]
        scope = context.activate() if context is not None else _null_scope()
        with scope:
            summaries = map_with_context(
                partial(_scan_shard_task, source=source),
                scan_items,
                cache_dir=cache_dir,
                workers=min(workers, len(scan_items)) or 1,
                retries=retries,
                task_timeout=task_timeout,
                on_error=on_error,
            )
            recomputed_scans = sum(1 for *_, fresh in summaries if fresh)
            missing_set = set(missing)
            prefixes: dict[int, np.ndarray] = {}
            state_blocks = np.empty(0, dtype=np.uint64)
            state_times = np.empty(0, dtype=np.int64)
            for shard in shards:
                if shard.index in missing_set:
                    # Blocks live before the shard, in ascending
                    # last-occurrence order = LRU stack order.
                    prefixes[shard.index] = state_blocks[np.argsort(state_times)]
                if shard.index < len(summaries):
                    blocks, times, _fresh = summaries[shard.index]
                    state_blocks, state_times = _merge_state(
                        state_blocks, state_times, blocks, times
                    )
            del state_blocks, state_times, summaries
            profile_items = [
                (
                    shards[i].start,
                    shards[i].stop,
                    profile_keys[i],
                    prefixes.pop(i),
                )
                for i in missing
            ]
            computed = map_with_context(
                partial(
                    _profile_shard_task,
                    source=source,
                    capacity_blocks=capacity_blocks,
                    n=n,
                ),
                profile_items,
                cache_dir=cache_dir,
                workers=min(workers, len(profile_items)) or 1,
                retries=retries,
                task_timeout=task_timeout,
                on_error=on_error,
            )
        for i, profile in zip(missing, computed):
            profiles[i] = profile
    merged = ConflictProfile.merge(iter(profiles))
    return ShardedProfileResult(
        profile=merged,
        plan=plan,
        workers=workers,
        recomputed_shards=len(missing),
        cached_shards=len(shards) - len(missing),
        recomputed_scans=recomputed_scans,
        seconds=time.perf_counter() - t0,
    )


class _null_scope:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def profile_blocks_sharded(
    blocks: np.ndarray,
    capacity_blocks: int,
    n: int,
    shard_size: int,
    workers: int = 1,
) -> ConflictProfile:
    """Sharded equivalent of :func:`repro.profiling.profile_blocks`.

    Bit-identical for every shard size (property-tested, including
    ``shard_size=1`` and shards larger than the trace); the pure
    block-level entry point used by equivalence tests and callers that
    already hold an array.  No caching — see
    :func:`run_sharded_profile` for the resumable trace-level driver.
    """
    source = ArrayBlockSource(np.ascontiguousarray(np.asarray(blocks), dtype=np.uint64))
    result = _run_sharded(
        source, capacity_blocks, n, shard_size, workers, context=None, key_base=None
    )
    return result.profile


def run_sharded_profile(
    trace: Trace,
    geometry: CacheGeometry,
    n: int,
    shard_size: int = DEFAULT_SHARD_SIZE,
    workers: int | None = 1,
    context=None,
    retries: int = 0,
    task_timeout: float | None = None,
    on_error: str = "raise",
) -> ShardedProfileResult:
    """Profile a trace shard-by-shard; return the merged profile plus
    execution stats.

    Memory-mapped traces (:meth:`Trace.open_mmap`) are read through a
    :class:`FileBlockSource`, so each worker touches only its own
    shard's pages; other traces ship their block array to the workers.
    With a cache-backed ``context`` (a
    :class:`~repro.pipeline.context.PipelineContext`), per-shard
    profiles and scan summaries are stored under keys derived from the
    trace digest + geometry + shard bounds, and a re-run resumes from
    whatever finished.  ``workers=None`` picks one per core.

    ``retries``/``task_timeout``/``on_error`` match
    :func:`repro.pipeline.campaign.run_campaign`, except that
    ``on_error="skip"`` is coerced to ``"raise"`` — a profile missing a
    shard would be wrong, not partial.  A shard task that fails is
    retried with backoff; dead workers rebuild the pool and resubmit
    only unfinished shards; already-cached shard artifacts are never
    recomputed by a retry.
    """
    if context is None:
        from repro.pipeline.runtime import current_context

        context = current_context()
    block_size = geometry.block_size
    path = trace.mmap_path
    if path is not None:
        if block_size <= 0 or block_size & (block_size - 1):
            raise ValueError(f"block size must be a power of two, got {block_size}")
        source = FileBlockSource(
            path, len(trace), block_shift=block_size.bit_length() - 1
        )
    else:
        source = ArrayBlockSource(trace.block_addresses(block_size))
    key_base = None
    if context is not None and context.cache is not None:
        key_base = {
            "trace": trace.digest,
            "block_size": block_size,
            "capacity_blocks": geometry.num_blocks,
            "n": n,
        }
    return _run_sharded(
        source,
        geometry.num_blocks,
        n,
        shard_size,
        workers,
        context,
        key_base,
        retries=retries,
        task_timeout=task_timeout,
        on_error=on_error,
    )


def profile_trace_sharded(
    trace: Trace,
    geometry: CacheGeometry,
    n: int,
    shard_size: int = DEFAULT_SHARD_SIZE,
    workers: int | None = 1,
    context=None,
) -> ConflictProfile:
    """Sharded equivalent of :func:`repro.profiling.profile_trace`.

    Bit-identical to the single pass; see :func:`run_sharded_profile`
    for the variant that also reports shard/cache statistics.
    """
    return run_sharded_profile(
        trace, geometry, n, shard_size=shard_size, workers=workers, context=context
    ).profile
