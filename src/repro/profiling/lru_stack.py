"""LRU stack used by the profiling algorithm (paper Fig. 1).

The stack keeps blocks ordered by recency (top = most recent).  The
profiler needs, per access, the blocks *above* the accessed block —
i.e. everything touched since its previous access — up to a depth bound
(the cache capacity, beyond which the miss is a capacity miss and is
not profiled).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

__all__ = ["LRUStack"]


class LRUStack:
    """An LRU stack of block addresses with bounded-depth lookup."""

    __slots__ = ("_stack",)

    def __init__(self):
        # Insertion-ordered dict; the *end* is the top of the stack.
        self._stack: OrderedDict[int, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._stack)

    def __contains__(self, block: int) -> bool:
        return block in self._stack

    def push(self, block: int) -> None:
        """Push a new block on top (or move an existing one to the top)."""
        if block in self._stack:
            self._stack.move_to_end(block)
        else:
            self._stack[block] = None

    def blocks_above(self, block: int, limit: int) -> list[int] | None:
        """Blocks more recent than ``block``, top-down, or ``None``.

        Returns ``None`` when ``block`` is deeper than ``limit`` (the
        profiler then classifies the access as a capacity miss).  The
        walk inspects at most ``limit + 1`` entries, bounding profiling
        cost by the cache capacity.

        Raises ``KeyError`` when ``block`` is not on the stack at all
        (callers must handle the compulsory case first).
        """
        if block not in self._stack:
            raise KeyError(f"block {block:#x} not on stack")
        above: list[int] = []
        for candidate in reversed(self._stack):
            if candidate == block:
                return above
            if len(above) >= limit:
                return None
            above.append(candidate)
        raise AssertionError("unreachable: membership checked above")

    def depth_of(self, block: int) -> int | None:
        """0-based depth from the top, or ``None`` if absent (unbounded walk)."""
        if block not in self._stack:
            return None
        for depth, candidate in enumerate(reversed(self._stack)):
            if candidate == block:
                return depth
        raise AssertionError("unreachable: membership checked above")

    def top_down(self) -> Iterator[int]:
        """Iterate blocks from most to least recently used."""
        return reversed(self._stack)

    def clear(self) -> None:
        self._stack.clear()
