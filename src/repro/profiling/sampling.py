"""Sampled profiling.

Profiling (paper Fig. 1) is the expensive phase — O(accesses x cache
capacity) worst case.  For long traces a standard mitigation is to
profile only periodic *windows* of the trace.  Window sampling keeps
the intra-window reuse structure intact (unlike per-access sampling,
which destroys the LRU-stack relationships the algorithm depends on),
so the conflict histogram is an unbiased shrunken image of the full
one when behaviour is stationary.

The ``sampling`` ablation quantifies the quality/cost trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.profiling.conflict_profile import ConflictProfile, profile_blocks

__all__ = ["SamplingReport", "profile_blocks_sampled", "sampling_quality"]


def profile_blocks_sampled(
    blocks: np.ndarray,
    capacity_blocks: int,
    n: int,
    window: int = 50_000,
    period: int = 4,
) -> ConflictProfile:
    """Profile every ``period``-th window of ``window`` accesses.

    ``period=1`` degenerates to full profiling.  Each window is
    profiled independently (the LRU stack restarts), which slightly
    under-counts conflicts that straddle window boundaries.

    Every window runs through the vectorized profiling kernel and the
    per-window profiles stream through
    :meth:`ConflictProfile.merge` as a generator, so at most one
    window profile is alive next to the accumulator — the same n-way
    merge the sharded driver uses.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    blocks = np.ascontiguousarray(np.asarray(blocks), dtype=np.uint64)
    if capacity_blocks < 1:
        raise ValueError(f"capacity must be >= 1 block, got {capacity_blocks}")
    if period == 1 or len(blocks) == 0:
        return profile_blocks(blocks, capacity_blocks, n)
    return ConflictProfile.merge(
        profile_blocks(blocks[start : start + window], capacity_blocks, n)
        for start in range(0, len(blocks), window * period)
    )


@dataclass(frozen=True)
class SamplingReport:
    """Outcome quality of optimizing on a sampled profile."""

    period: int
    sampled_accesses: int
    total_accesses: int
    full_profile_misses: int
    sampled_profile_misses: int
    baseline_misses: int

    @property
    def sample_fraction(self) -> float:
        return self.sampled_accesses / self.total_accesses if self.total_accesses else 0.0

    @property
    def quality_loss_percent(self) -> float:
        """Extra exact misses of the sampled-profile function relative to
        the misses the full-profile function removes."""
        removed = self.baseline_misses - self.full_profile_misses
        if removed <= 0:
            return 0.0
        return 100.0 * (
            self.sampled_profile_misses - self.full_profile_misses
        ) / removed


def sampling_quality(
    blocks: np.ndarray,
    capacity_blocks: int,
    n: int,
    m: int,
    period: int,
    window: int = 20_000,
) -> SamplingReport:
    """Optimize on full vs sampled profiles; compare exact outcomes."""
    from repro.cache.direct_mapped import simulate_direct_mapped
    from repro.cache.indexing import ModuloIndexing, XorIndexing
    from repro.search.families import PermutationFamily
    from repro.search.hill_climb import hill_climb

    blocks = np.asarray(blocks, dtype=np.uint64)
    full = profile_blocks(blocks, capacity_blocks, n)
    sampled = profile_blocks_sampled(
        blocks, capacity_blocks, n, window=window, period=period
    )
    family = PermutationFamily(n, m)
    full_fn = hill_climb(full, family).function
    sampled_fn = hill_climb(sampled, family).function
    return SamplingReport(
        period=period,
        sampled_accesses=sampled.accesses,
        total_accesses=len(blocks),
        full_profile_misses=simulate_direct_mapped(blocks, XorIndexing(full_fn)).misses,
        sampled_profile_misses=simulate_direct_mapped(
            blocks, XorIndexing(sampled_fn)
        ).misses,
        baseline_misses=simulate_direct_mapped(blocks, ModuloIndexing(m)).misses,
    )
