"""Reuse-distance computation.

The reuse distance of an access is the number of *distinct* blocks
touched since the previous access to the same block (the LRU stack
depth).  The paper's capacity filter classifies accesses with reuse
distance reaching the cache capacity as capacity misses.

Implemented with a Fenwick (binary indexed) tree over access positions:
O(N log N) total, independent of stack depth — used for analysis and to
cross-check the bounded-walk profiler.
"""

from __future__ import annotations

import numpy as np

__all__ = ["reuse_distances", "reuse_distance_histogram", "FenwickTree"]


class FenwickTree:
    """Prefix-sum tree over ``size`` integer cells."""

    __slots__ = ("_tree", "size")

    def __init__(self, size: int):
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self.size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` to cell ``index`` (0-based)."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range [0, {self.size})")
        i = index + 1
        while i <= self.size:
            self._tree[i] += delta
            i += i & -i

    def prefix_sum(self, index: int) -> int:
        """Sum of cells ``[0, index]`` (0-based, inclusive); -1 gives 0."""
        if index >= self.size:
            raise IndexError(f"index {index} out of range [0, {self.size})")
        total = 0
        i = index + 1
        while i > 0:
            total += self._tree[i]
            i -= i & -i
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of cells ``[lo, hi]`` inclusive."""
        if lo > hi:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)


def reuse_distances(blocks: np.ndarray) -> np.ndarray:
    """Per-access reuse distances; -1 marks first touches.

    Each block's most recent position carries a mark in a Fenwick tree;
    the distance of a reaccess is the number of marks strictly between
    the previous and current positions.
    """
    blocks = np.asarray(blocks, dtype=np.uint64)
    count = len(blocks)
    distances = np.empty(count, dtype=np.int64)
    tree = FenwickTree(count)
    last_position: dict[int, int] = {}
    for i in range(count):
        block = int(blocks[i])
        previous = last_position.get(block)
        if previous is None:
            distances[i] = -1
        else:
            distances[i] = tree.range_sum(previous + 1, i - 1) if i - 1 >= previous + 1 else 0
            tree.add(previous, -1)
        tree.add(i, 1)
        last_position[block] = i
    return distances


def reuse_distance_histogram(
    blocks: np.ndarray, max_distance: int | None = None
) -> dict[int, int]:
    """Histogram of reuse distances (first touches keyed as -1).

    Distances above ``max_distance`` are pooled under that bound, which
    matches how the capacity filter consumes the information.
    """
    distances = reuse_distances(blocks)
    histogram: dict[int, int] = {}
    for d in distances:
        d = int(d)
        if max_distance is not None and d > max_distance:
            d = max_distance
        histogram[d] = histogram.get(d, 0) + 1
    return histogram
