"""The long-lived optimization service (``repro serve``).

PR 5 made every experiment a frozen, digestable
:class:`~repro.api.spec.ExperimentSpec` and every result a replayable
``repro-report/v1`` document — exactly the contract a service needs.
This package puts that contract on a socket:

* :class:`~repro.serve.server.ReproServer` — stdlib-asyncio HTTP front
  end over a shared :class:`~repro.api.session.Session`: POST a spec,
  get a job id; identical in-flight specs share one computation
  (dedup by ``spec.digest``); finished jobs return the exact report.
* :class:`~repro.serve.jobs.JobRegistry` — the thread-safe job table
  and in-flight dedup map behind the server.
* :class:`~repro.serve.client.ServeClient` — stdlib client helpers
  (submit / poll / fetch-report) for examples, tests and CI.

Many replicas can share one artifact cache by pointing ``--cache-dir``
at a sqlite-backed root (see :mod:`repro.pipeline.storage`).
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import JOB_STATES, Job, JobRegistry, QueueFull
from repro.serve.server import ReproServer, ServerHandle

__all__ = [
    "JOB_STATES",
    "Job",
    "JobRegistry",
    "QueueFull",
    "ReproServer",
    "ServerHandle",
    "ServeClient",
    "ServeError",
]
