"""Stdlib HTTP client for the ``repro serve`` endpoint.

:class:`ServeClient` wraps :mod:`http.client` (no new deps) around the
``/v1`` API: submit a spec, poll its job, fetch the ``repro-report/v1``
document.  :meth:`ServeClient.run` is the one-call path — submit, wait,
return the finished job (report included) — used by
``examples/serve_client.py`` and the CI smoke check.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Mapping

from repro.api.spec import ExperimentSpec

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A non-2xx response (or a failed job) from the service."""

    def __init__(self, status: int, payload: Any):
        message = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class ServeClient:
    """One server endpoint; connections are per-request (the server
    answers ``Connection: close``), so a client is cheap and
    thread-safe to share."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8738, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str = "application/json",
    ) -> Any:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Content-Type": content_type} if body is not None else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        payload = json.loads(raw) if raw else None
        if response.status >= 400:
            raise ServeError(response.status, payload)
        return payload

    # -- API ---------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def submit(self, spec: "ExperimentSpec | Mapping | str") -> dict:
        """POST a spec; returns ``{job_id, digest, state, deduplicated}``.

        ``spec`` may be an :class:`~repro.api.spec.ExperimentSpec`, its
        ``to_dict`` mapping, or a TOML document string.
        """
        if isinstance(spec, str):
            return self._request(
                "POST", "/v1/jobs", spec.encode(), content_type="application/toml"
            )
        if isinstance(spec, ExperimentSpec):
            spec = spec.to_dict()
        return self._request("POST", "/v1/jobs", json.dumps(dict(spec)).encode())

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        """Job status (includes ``report`` once done)."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def report(self, job_id: str) -> dict:
        """The bare ``repro-report/v1`` document for a finished job."""
        return self._request("GET", f"/v1/jobs/{job_id}/report")

    def wait(self, job_id: str, timeout: float = 600.0, poll: float = 0.05) -> dict:
        """Poll until the job is terminal; returns its final status.

        Raises :class:`ServeError` on a failed job or :class:`TimeoutError`
        if the deadline passes first.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] == "done":
                return job
            if job["state"] == "failed":
                raise ServeError(500, {"error": f"job {job_id} failed: {job['error']}"})
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {job['state']} after {timeout}s")
            time.sleep(poll)

    def run(self, spec: "ExperimentSpec | Mapping | str", timeout: float = 600.0) -> dict:
        """Submit and wait; the returned job carries the full report."""
        submitted = self.submit(spec)
        return self.wait(submitted["job_id"], timeout=timeout)
