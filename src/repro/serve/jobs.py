"""Job registry for the optimization service: state + in-flight dedup.

A job is one submitted :class:`~repro.api.spec.ExperimentSpec` moving
through ``queued -> running -> done | failed``.  The registry is the
service's single source of truth and its deduplication table: while a
spec's job is still in flight (queued or running), every further
submission of the *same spec* — same ``spec.digest``, however it was
serialized — coalesces onto that job instead of spawning a second
computation.  This mirrors, at submission time, how the
:class:`~repro.pipeline.artifact_cache.ArtifactCache` already
deduplicates at rest: the cache collapses identical work across time,
the registry collapses it across concurrent clients.

Dedup is strictly *in flight*: once a job reaches a terminal state its
digest leaves the table, and a re-submission creates a fresh job that
replays through the artifact cache (reporting ``cached: true`` when it
recomputed nothing).  Failed jobs therefore never poison later
submissions.

All methods are thread-safe; the server calls them from the asyncio
loop and from worker threads.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.api.spec import ExperimentSpec

__all__ = ["JOB_STATES", "Job", "JobRegistry", "QueueFull"]


class QueueFull(RuntimeError):
    """Submission rejected: the in-flight queue is at its limit."""

#: Lifecycle states, in order of progress.
JOB_STATES = ("queued", "running", "done", "failed")

#: States in which a job still deduplicates new submissions.
_IN_FLIGHT = ("queued", "running")


@dataclass
class Job:
    """One submitted spec and everything the service knows about it."""

    id: str
    digest: str
    spec: ExperimentSpec
    state: str = "queued"
    created: float = 0.0
    started: float | None = None
    finished: float | None = None
    #: Execution attempts the resilient runner charged (>= 1 when done).
    attempts: int = 0
    #: Submissions coalesced onto this job by in-flight dedup.
    submissions: int = 1
    error: str | None = None
    #: The exact ``repro-report/v1`` document, once ``state == "done"``.
    report: dict | None = field(default=None, repr=False)
    #: Whether the run recomputed nothing (served entirely from cache).
    #: Best-effort under concurrent mixed workloads; authoritative when
    #: jobs run back-to-back (the CI replay check).
    cached: bool | None = None

    def to_json(self, include_report: bool = False) -> dict:
        """The job as the ``/v1/jobs`` endpoints serialize it."""
        payload = {
            "job_id": self.id,
            "digest": self.digest,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "attempts": self.attempts,
            "submissions": self.submissions,
            "error": self.error,
            "cached": self.cached,
        }
        if include_report and self.report is not None:
            payload["report"] = self.report
        return payload


class JobRegistry:
    """Thread-safe job table with in-flight dedup by spec digest."""

    def __init__(self, clock: Callable[[], float] = time.time):
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, str] = {}  # spec digest -> job id
        self._ids = itertools.count(1)

    # -- submission --------------------------------------------------------

    def submit(
        self, spec: ExperimentSpec, limit: int | None = None
    ) -> tuple[Job, bool]:
        """Register a submission; returns ``(job, deduplicated)``.

        ``deduplicated`` is True when the spec coalesced onto an
        already in-flight job instead of creating a new one.  With a
        ``limit``, a submission that would create a *new* job while
        ``limit`` jobs are already in flight raises :class:`QueueFull`
        (deduplicated submissions always succeed — they add no work).
        """
        digest = spec.digest
        with self._lock:
            existing_id = self._inflight.get(digest)
            if existing_id is not None:
                job = self._jobs[existing_id]
                if job.state in _IN_FLIGHT:
                    job.submissions += 1
                    return job, True
            if limit is not None and len(self._inflight) >= limit:
                raise QueueFull(
                    f"{len(self._inflight)} jobs in flight (limit {limit})"
                )
            job = Job(
                id=f"job-{next(self._ids):06d}",
                digest=digest,
                spec=spec,
                created=self._clock(),
            )
            self._jobs[job.id] = job
            self._inflight[digest] = job.id
            return job, False

    # -- transitions -------------------------------------------------------

    def mark_running(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs[job_id]
            job.state = "running"
            job.started = self._clock()

    def _finish(self, job_id: str, state: str) -> Job:
        job = self._jobs[job_id]
        job.state = state
        job.finished = self._clock()
        # Drop the dedup entry only if it still points at this job (a
        # newer submission may have replaced it already).
        if self._inflight.get(job.digest) == job_id:
            del self._inflight[job.digest]
        return job

    def mark_done(
        self, job_id: str, report: dict, attempts: int, cached: bool
    ) -> None:
        with self._lock:
            job = self._finish(job_id, "done")
            job.report = report
            job.attempts = attempts
            job.cached = cached

    def mark_failed(self, job_id: str, error: str, attempts: int) -> None:
        with self._lock:
            job = self._finish(job_id, "failed")
            job.error = error
            job.attempts = attempts

    # -- queries -----------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """All jobs, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        """Jobs per lifecycle state (every state present, zero-filled)."""
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    def in_flight(self) -> int:
        """Queued + running jobs (the dedup table's size)."""
        with self._lock:
            return len(self._inflight)
