"""The ``repro serve`` front end: specs over HTTP, reports back.

A :class:`ReproServer` is an :func:`asyncio.start_server`-based
HTTP/1.1 endpoint (stdlib only — the protocol layer is hand-rolled,
~80 lines, because the service speaks exactly one dialect: small JSON
bodies, ``Connection: close``) over one shared
:class:`~repro.api.session.Session`:

* ``POST /v1/jobs`` — submit an :class:`~repro.api.spec.ExperimentSpec`
  as JSON (the ``to_dict`` document, optionally wrapped as
  ``{"spec": ...}``) or TOML (``Content-Type: application/toml``).
  Returns ``202`` with a job id.  Submissions are deduplicated **in
  flight** by ``spec.digest``: while an identical spec is queued or
  running, new submissions join its job (``deduplicated: true``)
  instead of computing twice.  A full queue answers ``503``.
* ``GET /v1/jobs`` / ``GET /v1/jobs/<id>`` — job status: state,
  timestamps, resilient-runner attempt count and, once done, the exact
  ``repro-report/v1`` document plus ``cached`` (True when the run
  replayed entirely from the artifact cache).
* ``GET /v1/jobs/<id>/report`` — the bare ``repro-report/v1`` JSON,
  byte-identical to what ``repro run --json`` prints for the same spec.
* ``GET /v1/healthz`` / ``GET /v1/stats`` — liveness, queue depth, and
  the session's cache counters (hits / misses / stores / quarantined).

Jobs run on a bounded thread pool through
:func:`~repro.pipeline.resilience.run_serial_resilient`, so per-spec
``execution.retries`` and the ``serve.job`` fault-injection site
compose with the service exactly as they do with the CLI.  The pool is
adopted into the session, whose :meth:`~repro.api.session.Session.close`
tears both down deterministically.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any

from repro.api.errors import SpecError
from repro.api.session import Session
from repro.api.spec import ExperimentSpec
from repro.pipeline.faults import maybe_inject
from repro.pipeline.resilience import run_serial_resilient
from repro.serve.jobs import Job, JobRegistry, QueueFull

__all__ = ["ReproServer", "ServerHandle"]

#: Default TCP port (chosen from the unassigned user range).
DEFAULT_PORT = 8738

_MAX_BODY = 8 << 20  # spec documents are small; bound hostile bodies
_TOML_TYPES = ("application/toml", "text/toml", "text/x-toml")


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ReproServer:
    """One service instance: HTTP front end + job registry + worker pool.

    Parameters
    ----------
    session:
        The shared :class:`~repro.api.session.Session` jobs run on; the
        server adopts its worker pool into it, so closing the session
        (which :meth:`shutdown` does unless ``own_session=False``)
        waits for running jobs and releases cache backends.
    host / port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    workers:
        Worker threads executing jobs — the service's computation
        concurrency bound.
    queue_limit:
        Maximum jobs in flight (queued + running); submissions beyond
        it answer ``503`` so back-pressure is explicit, never unbounded
        memory.  Deduplicated submissions bypass the limit.
    retries:
        Default resilient-runner retry budget for jobs whose spec
        leaves ``execution.retries`` at 0.
    """

    def __init__(
        self,
        session: Session | None = None,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        workers: int = 2,
        queue_limit: int = 64,
        retries: int = 0,
        own_session: bool | None = None,
    ):
        self.session = session if session is not None else Session()
        self.own_session = own_session if own_session is not None else session is None
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_limit = queue_limit
        self.retries = retries
        self.registry = JobRegistry()
        self._executor = self.session.adopt(
            ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-serve")
        )
        self._futures: dict[str, Future] = {}
        self._server: asyncio.base_events.Server | None = None

    # -- job execution (worker threads) ------------------------------------

    def _counter_totals(self) -> dict[str, int]:
        totals = {"hits": 0, "misses": 0, "stores": 0, "quarantined": 0}
        for per_kind in self.session.cache_stats().values():
            for event in totals:
                totals[event] += per_kind.get(event, 0)
        return totals

    def _execute(self, job: Job) -> None:
        self.registry.mark_running(job.id)
        spec = job.spec

        def run_one(spec: ExperimentSpec) -> dict:
            maybe_inject("serve.job", spec.digest)
            return self.session.optimize(spec).to_json()

        # Per-job cache-counter delta: "cached" means the run re-read
        # everything and recomputed nothing.  Attribution is
        # best-effort when unrelated jobs run concurrently (counters
        # are session-wide), authoritative for back-to-back replays.
        before = self._counter_totals()
        [outcome] = run_serial_resilient(
            run_one,
            [spec],
            retries=max(spec.execution.retries, self.retries),
            on_error="skip",
        )
        if outcome.ok:
            after = self._counter_totals()
            cached = (
                after["misses"] == before["misses"]
                and after["stores"] == before["stores"]
                and after["hits"] > before["hits"]
            )
            self.registry.mark_done(job.id, outcome.value, outcome.attempts, cached)
        else:
            self.registry.mark_failed(job.id, outcome.error, outcome.attempts)
        self._futures.pop(job.id, None)

    def submit(self, spec: ExperimentSpec) -> tuple[Job, bool]:
        """Register a spec and (unless deduplicated) queue its job."""
        job, deduplicated = self.registry.submit(spec, limit=self.queue_limit)
        if not deduplicated:
            self._futures[job.id] = self._executor.submit(self._execute, job)
        return job, deduplicated

    # -- HTTP plumbing -----------------------------------------------------

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HttpError(400, "empty request")
        try:
            method, target, _version = request_line.split(None, 2)
        except ValueError:
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _HttpError(413, f"body exceeds {_MAX_BODY} bytes")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], headers, body

    @staticmethod
    def _response(status: int, payload: Any) -> bytes:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        return head.encode("latin-1") + body

    async def _handle(self, reader, writer) -> None:
        try:
            try:
                method, path, headers, body = await self._read_request(reader)
                status, payload = await self._route(method, path, headers, body)
            except _HttpError as error:
                status, payload = error.status, {"error": error.message}
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as error:  # never let one request kill the loop
                status = 500
                payload = {"error": f"{type(error).__name__}: {error}"}
            writer.write(self._response(status, payload))
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    # -- routes ------------------------------------------------------------

    def _parse_spec(self, headers: dict[str, str], body: bytes) -> ExperimentSpec:
        if not body:
            raise _HttpError(400, "missing request body (spec JSON or TOML)")
        content_type = headers.get("content-type", "application/json")
        content_type = content_type.split(";", 1)[0].strip().lower()
        try:
            if content_type in _TOML_TYPES:
                return ExperimentSpec.from_toml(body.decode())
            payload = json.loads(body)
            if not isinstance(payload, dict):
                raise _HttpError(400, "spec body must be a JSON object")
            if isinstance(payload.get("spec"), dict):
                payload = payload["spec"]
            return ExperimentSpec.from_dict(payload)
        except _HttpError:
            raise
        except (SpecError, ValueError, UnicodeDecodeError) as error:
            raise _HttpError(400, f"invalid spec: {error}")

    async def _route(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, Any]:
        if path == "/v1/healthz":
            if method != "GET":
                raise _HttpError(405, "healthz is GET-only")
            return 200, {"status": "ok"}
        if path == "/v1/stats":
            if method != "GET":
                raise _HttpError(405, "stats is GET-only")
            return 200, self.stats()
        if path == "/v1/jobs":
            if method == "GET":
                return 200, {"jobs": [j.to_json() for j in self.registry.jobs()]}
            if method != "POST":
                raise _HttpError(405, "jobs accepts GET and POST")
            spec = self._parse_spec(headers, body)
            try:
                job, deduplicated = self.submit(spec)
            except QueueFull as error:
                raise _HttpError(503, str(error))
            return 202, {
                "job_id": job.id,
                "digest": job.digest,
                "state": job.state,
                "deduplicated": deduplicated,
            }
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                raise _HttpError(405, "job status is GET-only")
            rest = path[len("/v1/jobs/") :]
            job_id, _, tail = rest.partition("/")
            job = self.registry.get(job_id)
            if job is None:
                raise _HttpError(404, f"unknown job {job_id!r}")
            if tail == "report":
                if job.report is None:
                    raise _HttpError(
                        409, f"job {job_id} is {job.state}; no report yet"
                    )
                return 200, job.report
            if tail:
                raise _HttpError(404, f"unknown job resource {tail!r}")
            return 200, job.to_json(include_report=True)
        raise _HttpError(404, f"unknown path {path!r}")

    def stats(self) -> dict:
        """The ``/v1/stats`` document."""
        counts = self.registry.counts()
        return {
            "jobs": counts,
            "queue": {
                "depth": counts["queued"] + counts["running"],
                "limit": self.queue_limit,
                "workers": self.workers,
            },
            "cache": {
                "totals": self._counter_totals(),
                "by_kind": self.session.cache_stats(),
                "dir": self.session.cache_dir,
                "storage": self.session.storage,
            },
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting (resolves :attr:`port` when 0)."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, cancel queued jobs, wait for running ones."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Cancel jobs still queued behind the pool; running jobs finish.
        for job_id, future in list(self._futures.items()):
            if future.cancel():
                self.registry.mark_failed(job_id, "cancelled at shutdown", 0)
                self._futures.pop(job_id, None)
        loop = asyncio.get_running_loop()
        if self.own_session:
            # Session.close shuts the adopted executor down (waiting
            # for in-flight jobs) and releases cache backends.
            await loop.run_in_executor(None, self.session.close)
        else:
            await loop.run_in_executor(
                None, lambda: self._executor.shutdown(wait=True)
            )

    async def _serve_until(self, stop_event: asyncio.Event) -> None:
        await self.start()
        try:
            await stop_event.wait()
        finally:
            await self.stop()

    def run(self, announce=print) -> None:
        """Blocking entry point (the CLI): serve until SIGINT/SIGTERM."""

        async def main() -> None:
            stop_event = asyncio.Event()
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, stop_event.set)
            await self.start()
            if announce is not None:
                announce(
                    f"repro serve listening on http://{self.host}:{self.port} "
                    f"(workers={self.workers}, queue_limit={self.queue_limit}, "
                    f"cache_dir={self.session.cache_dir or '<memory>'})"
                )
            try:
                await stop_event.wait()
            finally:
                await self.stop()

        asyncio.run(main())

    def run_in_thread(self) -> "ServerHandle":
        """Start in a daemon thread; returns a :class:`ServerHandle`.

        The embedding/test entry point: the handle reports the bound
        port once ready and stops the server (waiting for running
        jobs) from any thread.
        """
        handle = ServerHandle(self)
        handle._start()
        return handle


class ServerHandle:
    """A running :class:`ReproServer` in a background thread."""

    def __init__(self, server: ReproServer):
        self.server = server
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-loop", daemon=True
        )

    def _main(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            try:
                await self.server.start()
            finally:
                self._ready.set()  # release waiters even on bind failure
            try:
                await self._stop_event.wait()
            finally:
                await self.server.stop()

        try:
            asyncio.run(main())
        except BaseException as error:
            self._error = error
            self._ready.set()

    def _start(self) -> None:
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise self._error
        if not self._ready.is_set():
            raise RuntimeError("server thread failed to start in 30s")

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def stop(self, timeout: float | None = 60) -> None:
        """Request shutdown and join the server thread."""
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not stop in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
